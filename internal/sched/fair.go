package sched

import "kset/internal/sim"

// Fair is the canonical MASYNC-admissible asynchronous scheduler: it steps
// live processes round-robin, delivering every gated-deliverable pending
// message in the step (so any message not withheld by the Gate is received
// promptly), honours the crash plan, queries the oracle when one is set, and
// stops when the Stop predicate holds.
//
// With a nil Gate, every sent message is delivered at its receiver's next
// step, making the schedule as favourable as the asynchronous model permits.
// With a partition gate it becomes the paper's partition adversary while
// remaining admissible (withheld messages are delivered after the gate
// opens, or remain pending past the finite prefix, which MASYNC allows as
// long as delivery happens eventually).
type Fair struct {
	Crash  CrashPlan
	Faults FaultPlan
	Gate   Gate
	Oracle Oracle
	Stop   StopWhen

	// Only, when nonempty, restricts stepping to the given processes while
	// leaving everyone else alive (unlike CrashPlan.InitialDead). Pasted
	// runs (Lemma 11) use it to execute one partition's phase at a time.
	Only []sim.ProcessID

	// DrainAfterStop keeps the scheduler delivering pending gated messages
	// (without the Stop predicate applying) until buffers of live processes
	// are empty. Used when a later analysis needs the "complete" run where
	// everything sent has arrived.
	DrainAfterStop bool

	rr int
}

// Next implements sim.Scheduler.
func (s *Fair) Next(c *sim.Configuration) (sim.StepRequest, bool) {
	if req, ok := pendingSilentCrash(c, s.Crash); ok {
		return req, true
	}
	stopped := s.Stop != nil && s.Stop(c)
	if stopped && !s.DrainAfterStop {
		return sim.StepRequest{}, false
	}

	live := liveProcesses(c, s.Crash)
	if len(s.Only) > 0 {
		allowed := idSet(s.Only)
		var kept []sim.ProcessID
		for _, p := range live {
			if allowed[p] {
				kept = append(kept, p)
			}
		}
		live = kept
	}
	if len(live) == 0 {
		return sim.StepRequest{}, false
	}

	if stopped {
		// Drain mode: only schedule steps that deliver something.
		for range live {
			p := live[s.rr%len(live)]
			s.rr++
			ids := deliverable(c, p, s.Gate)
			if len(ids) > 0 {
				return s.request(c, p, ids), true
			}
		}
		return sim.StepRequest{}, false
	}

	p := live[s.rr%len(live)]
	s.rr++
	return s.request(c, p, deliverable(c, p, s.Gate)), true
}

func (s *Fair) request(c *sim.Configuration, p sim.ProcessID, deliver []int64) sim.StepRequest {
	req := sim.StepRequest{Proc: p, Deliver: deliver}
	if s.Oracle != nil {
		req.FD = s.Oracle.Query(p, c.Time(), c)
	}
	if s.Crash.ShouldCrash(p, c.Time()) {
		req.Crash = true
		req.OmitTo = s.Crash.omitSet(p)
	}
	s.Faults.apply(&req, c)
	return req
}

// NewFair returns a Fair scheduler with the given crash plan that stops once
// all correct processes decided.
func NewFair(cp CrashPlan) *Fair {
	return &Fair{Crash: cp, Stop: AllCorrectDecided(cp)}
}

// Solo returns a scheduler for a "solo" run of the process set d: every
// process outside d is initially dead, only messages inside d flow, and the
// run stops once every process in d has decided. These are the runs alpha_i
// of Lemma 12 and the (dec-D) runs of Theorem 1.
func Solo(n int, d []sim.ProcessID, oracle Oracle) *Fair {
	cp := CrashPlan{InitialDead: sim.Complement(n, d)}
	return &Fair{
		Crash:  cp,
		Gate:   IntraGroupGate([][]sim.ProcessID{d}),
		Oracle: oracle,
		Stop:   SetDecided(d),
	}
}
