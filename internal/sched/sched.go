// Package sched provides the schedulers (adversaries) that drive package
// sim: fair asynchronous scheduling for MASYNC-admissible runs, lock-step
// scheduling for partially synchronous processes (Theorem 2's model),
// initial-crash and crash-at-time failure injection, and message gates that
// implement the partition-delaying adversaries at the heart of the paper's
// proofs.
//
// A scheduler owns the failure pattern F(.) of the run it produces and the
// asynchrony of communication: a Gate may withhold any message for as long
// as it wants, which is exactly the freedom the paper's partition arguments
// exploit ("delay all communication between the sets of processes
// D_1, ..., D_{k-1}, D-bar until every correct process has decided").
package sched

import (
	"sort"

	"kset/internal/sim"
)

// Gate decides whether a pending message may be delivered now. A nil Gate
// means every pending message is deliverable. Gates model communication
// asynchrony: withholding a message is always admissible as long as the gate
// eventually opens (delivery after all decisions is still "eventual").
type Gate func(m sim.Message, c *sim.Configuration) bool

// Oracle supplies failure-detector values per query, realizing a failure
// detector history H(p, t). A nil oracle means the model has no failure
// detector.
type Oracle interface {
	Query(p sim.ProcessID, t int, c *sim.Configuration) sim.FDValue
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(p sim.ProcessID, t int, c *sim.Configuration) sim.FDValue

// Query implements Oracle.
func (f OracleFunc) Query(p sim.ProcessID, t int, c *sim.Configuration) sim.FDValue {
	return f(p, t, c)
}

// CrashPlan schedules failures. InitialDead processes never take a step
// (initial crashes, f(t)=F(0)); CrashAtTime maps a process to the global
// time at or after which its next step is its final one; OmitTo lists, per
// crashing process, the receivers to which the final step's sends are
// dropped (clause (2) of MASYNC).
type CrashPlan struct {
	InitialDead []sim.ProcessID
	CrashAtTime map[sim.ProcessID]int
	OmitTo      map[sim.ProcessID][]sim.ProcessID
}

// IsInitialDead reports whether p never takes a step under the plan.
func (cp CrashPlan) IsInitialDead(p sim.ProcessID) bool {
	for _, q := range cp.InitialDead {
		if q == p {
			return true
		}
	}
	return false
}

// ShouldCrash reports whether p's step at global time t must be its final
// step under the plan.
func (cp CrashPlan) ShouldCrash(p sim.ProcessID, t int) bool {
	at, ok := cp.CrashAtTime[p]
	return ok && t >= at
}

// omitSet converts the OmitTo list for p into the set form StepRequest
// expects.
func (cp CrashPlan) omitSet(p sim.ProcessID) map[sim.ProcessID]bool {
	list := cp.OmitTo[p]
	if len(list) == 0 {
		return nil
	}
	out := make(map[sim.ProcessID]bool, len(list))
	for _, q := range list {
		out[q] = true
	}
	return out
}

// FaultBudget returns the total number of processes the plan makes faulty.
func (cp CrashPlan) FaultBudget() int {
	seen := make(map[sim.ProcessID]bool)
	for _, p := range cp.InitialDead {
		seen[p] = true
	}
	for p := range cp.CrashAtTime {
		seen[p] = true
	}
	return len(seen)
}

// StopWhen is a run-termination predicate for schedulers.
type StopWhen func(c *sim.Configuration) bool

// AllCorrectDecided returns a stop predicate that is true once every process
// outside the plan's fault set has decided. This is the natural end of a
// possibility-side run: Termination has been observed for every correct
// process.
func AllCorrectDecided(cp CrashPlan) StopWhen {
	return func(c *sim.Configuration) bool {
		for _, p := range c.ProcessIDs() {
			if cp.IsInitialDead(p) || c.Crashed(p) {
				continue
			}
			if _, ok := cp.CrashAtTime[p]; ok {
				continue
			}
			if _, decided := c.Decision(p); !decided {
				return false
			}
		}
		return true
	}
}

// SetDecided returns a stop predicate that is true once every process in ps
// has decided or crashed.
func SetDecided(ps []sim.ProcessID) StopWhen {
	set := append([]sim.ProcessID(nil), ps...)
	return func(c *sim.Configuration) bool {
		return c.AllDecided(set)
	}
}

// deliverable returns the ids of p's pending messages that pass the gate, in
// buffer order. The non-copying BufferView suffices: gates only read the
// message, and the ids escape before the configuration is stepped.
func deliverable(c *sim.Configuration, p sim.ProcessID, g Gate) []int64 {
	buf := c.BufferView(p)
	ids := make([]int64, 0, len(buf))
	for _, m := range buf {
		if g == nil || g(m, c) {
			ids = append(ids, m.ID)
		}
	}
	return ids
}

// pendingSilentCrash returns a SilentCrash request for the first
// initially-dead process that is not yet marked crashed in the
// configuration, so schedulers can realize F(0) before any real step.
func pendingSilentCrash(c *sim.Configuration, cp CrashPlan) (sim.StepRequest, bool) {
	for _, p := range cp.InitialDead {
		if !c.Crashed(p) {
			return sim.StepRequest{Proc: p, SilentCrash: true}, true
		}
	}
	return sim.StepRequest{}, false
}

// liveProcesses returns the non-crashed, non-initial-dead processes in id
// order.
func liveProcesses(c *sim.Configuration, cp CrashPlan) []sim.ProcessID {
	var out []sim.ProcessID
	for _, p := range c.ProcessIDs() {
		if c.Crashed(p) || cp.IsInitialDead(p) {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
