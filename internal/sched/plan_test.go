package sched

import (
	"errors"
	"testing"

	"kset/internal/sim"
)

func TestCrashPlanValidate(t *testing.T) {
	for _, tc := range []struct {
		name  string
		plan  CrashPlan
		n, f  int
		field string // "" = valid
	}{
		{name: "empty", plan: CrashPlan{}, n: 3, f: 1},
		{name: "valid full", n: 5, f: 2, plan: CrashPlan{
			InitialDead: []sim.ProcessID{2},
			CrashAtTime: map[sim.ProcessID]int{4: 3},
			OmitTo:      map[sim.ProcessID][]sim.ProcessID{4: {1, 5}},
		}},
		{name: "dead out of range", n: 3, f: 3, field: "InitialDead",
			plan: CrashPlan{InitialDead: []sim.ProcessID{4}}},
		{name: "dead zero id", n: 3, f: 3, field: "InitialDead",
			plan: CrashPlan{InitialDead: []sim.ProcessID{0}}},
		{name: "dead duplicate", n: 3, f: 3, field: "InitialDead",
			plan: CrashPlan{InitialDead: []sim.ProcessID{2, 2}}},
		{name: "crash out of range", n: 3, f: 3, field: "CrashAtTime",
			plan: CrashPlan{CrashAtTime: map[sim.ProcessID]int{9: 0}}},
		{name: "crash negative time", n: 3, f: 3, field: "CrashAtTime",
			plan: CrashPlan{CrashAtTime: map[sim.ProcessID]int{1: -1}}},
		{name: "dead and crashing", n: 3, f: 3, field: "CrashAtTime",
			plan: CrashPlan{InitialDead: []sim.ProcessID{1}, CrashAtTime: map[sim.ProcessID]int{1: 2}}},
		{name: "omission without crash", n: 3, f: 3, field: "OmitTo",
			plan: CrashPlan{OmitTo: map[sim.ProcessID][]sim.ProcessID{1: {2}}}},
		{name: "omission receiver out of range", n: 3, f: 3, field: "OmitTo",
			plan: CrashPlan{CrashAtTime: map[sim.ProcessID]int{1: 0}, OmitTo: map[sim.ProcessID][]sim.ProcessID{1: {7}}}},
		{name: "omission receiver duplicate", n: 3, f: 3, field: "OmitTo",
			plan: CrashPlan{CrashAtTime: map[sim.ProcessID]int{1: 0}, OmitTo: map[sim.ProcessID][]sim.ProcessID{1: {2, 2}}}},
		{name: "budget exceeded", n: 4, f: 1, field: "FaultBudget",
			plan: CrashPlan{InitialDead: []sim.ProcessID{1}, CrashAtTime: map[sim.ProcessID]int{2: 0}}},
		{name: "budget check skipped", n: 4, f: -1,
			plan: CrashPlan{InitialDead: []sim.ProcessID{1}, CrashAtTime: map[sim.ProcessID]int{2: 0}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(tc.n, tc.f)
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("Validate = %v, want *PlanError", err)
			}
			if pe.Plan != "CrashPlan" || pe.Field != tc.field {
				t.Fatalf("PlanError{%s,%s}, want field %s", pe.Plan, pe.Field, tc.field)
			}
		})
	}
}

func TestFaultPlanValidate(t *testing.T) {
	for _, tc := range []struct {
		name  string
		plan  FaultPlan
		n, f  int
		field string
	}{
		{name: "zero plan", plan: FaultPlan{}, n: 3, f: 0},
		{name: "valid", n: 4, f: 1, plan: FaultPlan{
			Model: sim.FaultSendOmission, From: map[sim.ProcessID]int{3: 2}, Budget: 1,
		}},
		{name: "unknown model", n: 3, f: 3, field: "Model",
			plan: FaultPlan{Model: sim.FaultModel(42)}},
		{name: "process out of range", n: 3, f: 3, field: "From",
			plan: FaultPlan{Model: sim.FaultReceiveOmission, From: map[sim.ProcessID]int{5: 0}}},
		{name: "negative activation", n: 3, f: 3, field: "From",
			plan: FaultPlan{Model: sim.FaultReceiveOmission, From: map[sim.ProcessID]int{1: -2}}},
		{name: "negative budget", n: 3, f: 3, field: "Budget",
			plan: FaultPlan{Model: sim.FaultByzantine, Budget: -1}},
		{name: "too many faulty", n: 4, f: 1, field: "From",
			plan: FaultPlan{Model: sim.FaultSendOmission, From: map[sim.ProcessID]int{1: 0, 2: 0}}},
		{name: "bound check skipped", n: 4, f: -1,
			plan: FaultPlan{Model: sim.FaultSendOmission, From: map[sim.ProcessID]int{1: 0, 2: 0}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(tc.n, tc.f)
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("Validate = %v, want *PlanError", err)
			}
			if pe.Plan != "FaultPlan" || pe.Field != tc.field {
				t.Fatalf("PlanError{%s,%s}, want field %s", pe.Plan, pe.Field, tc.field)
			}
		})
	}
}

func TestFairHonoursSendOmissionPlan(t *testing.T) {
	// Process 1 omits every send from time 0 (unbounded budget): its one
	// broadcast is lost, countAlg never re-broadcasts, so nobody ever hears
	// p1 and quorum 3 blocks at the step horizon.
	fp := FaultPlan{Model: sim.FaultSendOmission, From: map[sim.ProcessID]int{1: 0}}
	s := &Fair{Faults: fp, Stop: AllCorrectDecided(CrashPlan{})}
	run, err := sim.Execute(countAlg{quorum: 3}, []sim.Value{1, 2, 3}, s, sim.Options{MaxSteps: 60})
	if err != nil && !errors.Is(err, sim.ErrHorizon) {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) == 0 {
		t.Fatal("quorum reached despite p1's broadcast being send-omitted")
	}
	if got := run.Final.FaultsUsed(1); got != 1 {
		t.Fatalf("FaultsUsed(1) = %d, want 1 (one effective omission)", got)
	}
	for _, ev := range run.Events {
		if ev.Proc == 1 && len(ev.Sent) > 0 {
			t.Fatalf("p1 sent %d messages at t=%d under a full omission plan", len(ev.Sent), ev.Time)
		}
	}
}

func TestFairFaultBudgetExpires(t *testing.T) {
	// Receive omission with budget 1: p2 loses one delivery batch, then
	// behaves correctly; with quorum 2 every process still decides.
	fp := FaultPlan{Model: sim.FaultReceiveOmission, From: map[sim.ProcessID]int{2: 0}, Budget: 1}
	s := &Fair{Faults: fp, Stop: AllCorrectDecided(CrashPlan{})}
	run, err := sim.Execute(countAlg{quorum: 2}, []sim.Value{1, 2, 3}, s, sim.Options{MaxSteps: 120})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v (budget-1 omission should not prevent quorum 2)", run.Blocked)
	}
	if got := run.Final.FaultsUsed(2); got != 1 {
		t.Fatalf("FaultsUsed(2) = %d, want exactly the budget 1", got)
	}
}

func TestLockstepHonoursFaultPlanWithCrashPrecedence(t *testing.T) {
	// p1 is both fault-planned and crash-planned at time 0: the crash wins
	// (the simulator rejects combined requests), and the run proceeds as a
	// plain crash run.
	cp := CrashPlan{CrashAtTime: map[sim.ProcessID]int{1: 0}}
	fp := FaultPlan{Model: sim.FaultSendOmission, From: map[sim.ProcessID]int{1: 0}}
	s := &Lockstep{Crash: cp, Faults: fp, Stop: AllCorrectDecided(cp), MaxRounds: 40}
	run, err := sim.Execute(countAlg{quorum: 2}, []sim.Value{1, 2, 3}, s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !run.Final.Crashed(1) {
		t.Fatal("crash plan not honoured")
	}
	if got := run.Final.FaultsUsed(1); got != 0 {
		t.Fatalf("FaultsUsed(1) = %d, want 0 (crash precedence)", got)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
}

func TestLockstepHonoursByzantinePlan(t *testing.T) {
	// p3 corrupts every send: countAlg's type assertion ignores Corrupted
	// payloads, so with quorum 3 nobody ever counts p3 and the run blocks.
	fp := FaultPlan{Model: sim.FaultByzantine, From: map[sim.ProcessID]int{3: 0}}
	s := &Lockstep{Faults: fp, Stop: AllCorrectDecided(CrashPlan{}), MaxRounds: 25}
	run, err := sim.Execute(countAlg{quorum: 3}, []sim.Value{1, 2, 3}, s, sim.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(run.Blocked) == 0 {
		t.Fatal("quorum reached despite p3's pings being corrupted")
	}
	if run.Final.FaultsUsed(3) == 0 {
		t.Fatal("no fault events charged to the Byzantine process")
	}
	corrupted := false
	for _, ev := range run.Events {
		if ev.Proc != 3 {
			continue
		}
		for _, m := range ev.Sent {
			if _, ok := m.Payload.(sim.Corrupted); ok {
				corrupted = true
			} else {
				t.Fatalf("p3 sent an uncorrupted payload %q at t=%d", m.Payload.Key(), ev.Time)
			}
		}
	}
	if !corrupted {
		t.Fatal("p3 never sent a corrupted message")
	}
}
