package graph

import "sort"

// SCCs returns the strongly connected components of g using Tarjan's
// algorithm (iterative, so deep graphs cannot overflow the stack). Each
// component is sorted ascending and the component list is sorted by its
// smallest member, making the output deterministic.
func (g *Digraph) SCCs() [][]int {
	nodes := g.Nodes()
	index := make(map[int]int, len(nodes))
	lowlink := make(map[int]int, len(nodes))
	onStack := make(map[int]bool, len(nodes))
	var stack []int
	var comps [][]int
	next := 0

	type frame struct {
		v    int
		succ []int
		i    int
	}

	for _, root := range nodes {
		if _, visited := index[root]; visited {
			continue
		}
		frames := []frame{{v: root, succ: g.Out(root)}}
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if _, visited := index[w]; !visited {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, succ: g.Out(w)})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is fully explored.
			if lowlink[f.v] == index[f.v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if lowlink[f.v] < lowlink[parent.v] {
					lowlink[parent.v] = lowlink[f.v]
				}
			}
		}
	}

	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// Condensation returns the DAG obtained by contracting every strongly
// connected component to a single vertex, together with the components (in
// the same deterministic order as SCCs) and the node-to-component index map.
// Component i of the returned slice corresponds to node i of the DAG.
func (g *Digraph) Condensation() (dag *Digraph, comps [][]int, compOf map[int]int) {
	comps = g.SCCs()
	compOf = make(map[int]int, len(g.nodes))
	for ci, comp := range comps {
		for _, v := range comp {
			compOf[v] = ci
		}
	}
	dag = New()
	for ci := range comps {
		dag.AddNode(ci)
	}
	for u := range g.out {
		for w := range g.out[u] {
			cu, cw := compOf[u], compOf[w]
			if cu != cw {
				// Distinct components, so AddEdge cannot fail.
				_ = dag.AddEdge(cu, cw)
			}
		}
	}
	return dag, comps, compOf
}

// SourceComponents returns the source components of g: strongly connected
// components whose vertex in the condensation DAG has in-degree 0 (Section
// VI). Components are sorted by smallest member.
func (g *Digraph) SourceComponents() [][]int {
	dag, comps, _ := g.Condensation()
	var out [][]int
	for ci, comp := range comps {
		if dag.InDegree(ci) == 0 {
			out = append(out, comp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// SourceComponentsReaching returns the source components of g from which v
// is reachable, sorted by smallest member. By Lemma 7 the result is nonempty
// for every node of a graph with min in-degree >= 1 (and for any node, since
// a node with in-degree 0 is itself a source component).
func (g *Digraph) SourceComponentsReaching(v int) [][]int {
	anc := g.Ancestors(v)
	// Source components of the ancestor-induced subgraph are exactly the
	// source components of g that reach v: every in-neighbour of an ancestor
	// of v is itself an ancestor of v, so no edges into the subgraph are
	// lost.
	return g.Subgraph(anc).SourceComponents()
}

// WeaklyConnectedComponents returns the weakly connected components of g
// (connected components when edge direction is ignored), each sorted
// ascending, ordered by smallest member.
func (g *Digraph) WeaklyConnectedComponents() [][]int {
	seen := make(map[int]bool, len(g.nodes))
	var comps [][]int
	for _, root := range g.Nodes() {
		if seen[root] {
			continue
		}
		var comp []int
		stack := []int{root}
		seen[root] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for w := range g.out[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
			for u := range g.in[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// IsClique reports whether the given nodes form a fully connected subgraph
// (every ordered pair joined by an edge). The initial cliques of the FLP
// protocol are source components that happen to be cliques.
func (g *Digraph) IsClique(nodes []int) bool {
	for _, u := range nodes {
		for _, w := range nodes {
			if u != w && !g.out[u][w] {
				return false
			}
		}
	}
	return true
}
