package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n, degree int) *Digraph {
	rng := rand.New(rand.NewSource(11))
	g := New()
	for v := 0; v < n; v++ {
		g.AddNode(v)
	}
	for v := 0; v < n; v++ {
		for i := 0; i < degree; i++ {
			u := rng.Intn(n)
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

func BenchmarkSCCs256(b *testing.B) {
	g := benchGraph(256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.SCCs(); len(got) == 0 {
			b.Fatal("no components")
		}
	}
}

func BenchmarkSCCs4096(b *testing.B) {
	g := benchGraph(4096, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.SCCs(); len(got) == 0 {
			b.Fatal("no components")
		}
	}
}

func BenchmarkSourceComponents1024(b *testing.B) {
	g := benchGraph(1024, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.SourceComponents()
	}
}

func BenchmarkSourceComponentsReaching(b *testing.B) {
	g := benchGraph(512, 3)
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.SourceComponentsReaching(nodes[i%len(nodes)])
	}
}

func BenchmarkWeaklyConnectedComponents(b *testing.B) {
	g := benchGraph(1024, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.WeaklyConnectedComponents()
	}
}
