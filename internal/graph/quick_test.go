package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// edgeList is a quick.Generator producing random simple digraphs as edge
// lists over a small node range.
type edgeList struct {
	N     int
	Edges [][2]int
}

// Generate implements quick.Generator.
func (edgeList) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 2 + rng.Intn(14)
	m := rng.Intn(3 * n)
	edges := make([][2]int, 0, m)
	for i := 0; i < m; i++ {
		u, w := rng.Intn(n), rng.Intn(n)
		if u != w {
			edges = append(edges, [2]int{u, w})
		}
	}
	return reflect.ValueOf(edgeList{N: n, Edges: edges})
}

// The compiler cannot check this for us: quick.Generator is consulted via
// reflection at run time, and a wrong signature silently falls back to
// random struct generation.
var _ quick.Generator = edgeList{}

func buildGraph(el edgeList) *Digraph {
	g := New()
	for v := 0; v < el.N; v++ {
		g.AddNode(v)
	}
	for _, e := range el.Edges {
		_ = g.AddEdge(e[0], e[1])
	}
	return g
}

// TestQuickSCCsPartitionNodes: strongly connected components always form a
// partition of the node set.
func TestQuickSCCsPartitionNodes(t *testing.T) {
	prop := func(el edgeList) bool {
		g := buildGraph(el)
		seen := map[int]int{}
		for _, comp := range g.SCCs() {
			for _, v := range comp {
				seen[v]++
			}
		}
		if len(seen) != g.Len() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCondensationIsAcyclic: the condensation never contains a cycle
// (every SCC of the condensation is a singleton).
func TestQuickCondensationIsAcyclic(t *testing.T) {
	prop := func(el edgeList) bool {
		g := buildGraph(el)
		dag, comps, _ := g.Condensation()
		if dag.Len() != len(comps) {
			return false
		}
		for _, c := range dag.SCCs() {
			if len(c) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSourceComponentsClosedUnderInNeighbours: every in-neighbour of a
// source-component member is itself a member (the defining property used in
// Lemma 6's proof).
func TestQuickSourceComponentsClosedUnderInNeighbours(t *testing.T) {
	prop := func(el edgeList) bool {
		g := buildGraph(el)
		for _, comp := range g.SourceComponents() {
			member := map[int]bool{}
			for _, v := range comp {
				member[v] = true
			}
			for _, v := range comp {
				for _, u := range g.In(v) {
					if !member[u] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAncestorsContainInNeighboursTransitively: u in Ancestors(v) iff
// v in Reachable(u).
func TestQuickAncestorsReachableDuality(t *testing.T) {
	prop := func(el edgeList) bool {
		g := buildGraph(el)
		nodes := g.Nodes()
		if len(nodes) == 0 {
			return true
		}
		v := nodes[len(nodes)/2]
		anc := map[int]bool{}
		for _, u := range g.Ancestors(v) {
			anc[u] = true
		}
		for _, u := range nodes {
			reach := false
			for _, w := range g.Reachable(u) {
				if w == v {
					reach = true
					break
				}
			}
			if reach != anc[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWeaklyConnectedCoverSources: every weakly connected component
// contains at least one source component (Lemma 7).
func TestQuickWeaklyConnectedCoverSources(t *testing.T) {
	prop := func(el edgeList) bool {
		g := buildGraph(el)
		srcs := g.SourceComponents()
		for _, wcc := range g.WeaklyConnectedComponents() {
			member := map[int]bool{}
			for _, v := range wcc {
				member[v] = true
			}
			found := false
			for _, s := range srcs {
				if member[s[0]] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
