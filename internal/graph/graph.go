// Package graph implements the directed-graph machinery of Section VI of
// the paper: strongly connected components, condensation DAGs, source
// components (Lemmas 6 and 7), weakly connected components, and ancestor
// closures. The stage-1 communication graph of the generalized FLP
// k-set-agreement algorithm ("there is an edge from u to w iff w received a
// message from u in the first stage") is analyzed with exactly these
// operations.
//
// All operations are deterministic: nodes and results are reported in
// ascending order regardless of insertion order.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a finite directed simple graph over int node ids. The zero
// value is an empty graph ready to use.
type Digraph struct {
	nodes map[int]bool
	out   map[int]map[int]bool
	in    map[int]map[int]bool
}

// New returns an empty digraph.
func New() *Digraph {
	return &Digraph{
		nodes: make(map[int]bool),
		out:   make(map[int]map[int]bool),
		in:    make(map[int]map[int]bool),
	}
}

func (g *Digraph) ensure() {
	if g.nodes == nil {
		g.nodes = make(map[int]bool)
		g.out = make(map[int]map[int]bool)
		g.in = make(map[int]map[int]bool)
	}
}

// AddNode inserts node v (idempotent).
func (g *Digraph) AddNode(v int) {
	g.ensure()
	g.nodes[v] = true
}

// AddEdge inserts the directed edge u -> w, adding the endpoints as needed.
// Self-loops are allowed by the representation but rejected here because the
// paper's graphs are simple; adding one is a programming error.
func (g *Digraph) AddEdge(u, w int) error {
	if u == w {
		return fmt.Errorf("graph: self-loop %d -> %d rejected (simple graph)", u, w)
	}
	g.ensure()
	g.nodes[u] = true
	g.nodes[w] = true
	if g.out[u] == nil {
		g.out[u] = make(map[int]bool)
	}
	if g.in[w] == nil {
		g.in[w] = make(map[int]bool)
	}
	g.out[u][w] = true
	g.in[w][u] = true
	return nil
}

// HasEdge reports whether the edge u -> w exists.
func (g *Digraph) HasEdge(u, w int) bool { return g.out[u][w] }

// HasNode reports whether v is a node.
func (g *Digraph) HasNode(v int) bool { return g.nodes[v] }

// Len returns the number of nodes.
func (g *Digraph) Len() int { return len(g.nodes) }

// EdgeCount returns the number of edges.
func (g *Digraph) EdgeCount() int {
	total := 0
	for _, succ := range g.out {
		total += len(succ)
	}
	return total
}

// Nodes returns the node ids in ascending order.
func (g *Digraph) Nodes() []int {
	out := make([]int, 0, len(g.nodes))
	for v := range g.nodes {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Out returns u's out-neighbours in ascending order.
func (g *Digraph) Out(u int) []int { return sortedKeys(g.out[u]) }

// In returns w's in-neighbours in ascending order.
func (g *Digraph) In(w int) []int { return sortedKeys(g.in[w]) }

// InDegree returns the in-degree of w.
func (g *Digraph) InDegree(w int) int { return len(g.in[w]) }

// OutDegree returns the out-degree of u.
func (g *Digraph) OutDegree(u int) int { return len(g.out[u]) }

// MinInDegree returns the minimum in-degree over all nodes (0 for the empty
// graph). This is the delta of Lemma 6.
func (g *Digraph) MinInDegree() int {
	first := true
	minDeg := 0
	for v := range g.nodes {
		d := len(g.in[v])
		if first || d < minDeg {
			minDeg = d
			first = false
		}
	}
	return minDeg
}

// Subgraph returns the induced subgraph on the given node set. Nodes absent
// from g are ignored.
func (g *Digraph) Subgraph(nodes []int) *Digraph {
	keep := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		if g.nodes[v] {
			keep[v] = true
		}
	}
	sub := New()
	for v := range keep {
		sub.AddNode(v)
		for w := range g.out[v] {
			if keep[w] {
				// Both endpoints kept and the edge existed in a simple
				// graph, so AddEdge cannot fail.
				_ = sub.AddEdge(v, w)
			}
		}
	}
	return sub
}

// Ancestors returns every node with a directed path to v, including v
// itself, in ascending order.
func (g *Digraph) Ancestors(v int) []int {
	if !g.nodes[v] {
		return nil
	}
	seen := map[int]bool{v: true}
	stack := []int{v}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for u := range g.in[cur] {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return sortedKeys(seen)
}

// Reachable returns every node reachable from v by a directed path,
// including v itself, in ascending order.
func (g *Digraph) Reachable(v int) []int {
	if !g.nodes[v] {
		return nil
	}
	seen := map[int]bool{v: true}
	stack := []int{v}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for w := range g.out[cur] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return sortedKeys(seen)
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
