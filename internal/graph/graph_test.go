package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func mustEdge(t *testing.T, g *Digraph, u, w int) {
	t.Helper()
	if err := g.AddEdge(u, w); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, w, err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	if g.Len() != 0 || g.EdgeCount() != 0 {
		t.Fatal("empty graph has nodes or edges")
	}
	if got := g.SCCs(); len(got) != 0 {
		t.Fatalf("SCCs of empty graph = %v", got)
	}
	if got := g.MinInDegree(); got != 0 {
		t.Fatalf("MinInDegree of empty graph = %d", got)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var g Digraph
	g.AddNode(1)
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

func TestRejectSelfLoop(t *testing.T) {
	g := New()
	if err := g.AddEdge(3, 3); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestBasicAccessors(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 2)
	mustEdge(t, g, 1, 3)
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("HasEdge wrong")
	}
	if got := g.Out(1); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("Out(1) = %v", got)
	}
	if got := g.In(2); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("In(2) = %v", got)
	}
	if g.InDegree(2) != 2 || g.OutDegree(1) != 2 {
		t.Fatal("degree wrong")
	}
	if g.MinInDegree() != 0 { // node 1 has in-degree 0
		t.Fatalf("MinInDegree = %d, want 0", g.MinInDegree())
	}
	if g.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d, want 3", g.EdgeCount())
	}
}

func TestSCCsTwoCycles(t *testing.T) {
	g := New()
	// Cycle {1,2,3} -> cycle {4,5}.
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 1)
	mustEdge(t, g, 4, 5)
	mustEdge(t, g, 5, 4)
	mustEdge(t, g, 3, 4)
	want := [][]int{{1, 2, 3}, {4, 5}}
	if got := g.SCCs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}
	srcs := g.SourceComponents()
	if !reflect.DeepEqual(srcs, [][]int{{1, 2, 3}}) {
		t.Fatalf("SourceComponents = %v", srcs)
	}
}

func TestSCCsSingletons(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	want := [][]int{{1}, {2}, {3}}
	if got := g.SCCs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// A 50k-node chain would overflow a recursive Tarjan.
	g := New()
	const n = 50000
	for i := 0; i < n-1; i++ {
		mustEdge(t, g, i, i+1)
	}
	if got := len(g.SCCs()); got != n {
		t.Fatalf("SCC count = %d, want %d", got, n)
	}
}

func TestCondensation(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 1)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	mustEdge(t, g, 4, 3)
	dag, comps, compOf := g.Condensation()
	if len(comps) != 2 {
		t.Fatalf("comps = %v", comps)
	}
	if compOf[1] != compOf[2] || compOf[3] != compOf[4] || compOf[1] == compOf[3] {
		t.Fatalf("compOf = %v", compOf)
	}
	if !dag.HasEdge(compOf[1], compOf[3]) {
		t.Fatal("condensation missing edge between components")
	}
	if dag.EdgeCount() != 1 {
		t.Fatalf("condensation edges = %d, want 1", dag.EdgeCount())
	}
}

func TestAncestorsAndReachable(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 4, 3)
	mustEdge(t, g, 3, 5)
	if got := g.Ancestors(3); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("Ancestors(3) = %v", got)
	}
	if got := g.Reachable(2); !reflect.DeepEqual(got, []int{2, 3, 5}) {
		t.Fatalf("Reachable(2) = %v", got)
	}
	if got := g.Ancestors(99); got != nil {
		t.Fatalf("Ancestors of missing node = %v", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 1)
	sub := g.Subgraph([]int{1, 2, 99})
	if sub.Len() != 2 {
		t.Fatalf("subgraph nodes = %d, want 2", sub.Len())
	}
	if !sub.HasEdge(1, 2) || sub.HasEdge(2, 3) {
		t.Fatal("subgraph edges wrong")
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	g.AddNode(9)
	want := [][]int{{1, 2}, {3, 4}, {9}}
	if got := g.WeaklyConnectedComponents(); !reflect.DeepEqual(got, want) {
		t.Fatalf("WCC = %v, want %v", got, want)
	}
}

func TestSourceComponentsReaching(t *testing.T) {
	g := New()
	// Two source cycles {1,2} and {5,6}; both reach 4; only {1,2} reaches 3.
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 1)
	mustEdge(t, g, 5, 6)
	mustEdge(t, g, 6, 5)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	mustEdge(t, g, 6, 4)
	if got := g.SourceComponentsReaching(3); !reflect.DeepEqual(got, [][]int{{1, 2}}) {
		t.Fatalf("reaching 3 = %v", got)
	}
	if got := g.SourceComponentsReaching(4); !reflect.DeepEqual(got, [][]int{{1, 2}, {5, 6}}) {
		t.Fatalf("reaching 4 = %v", got)
	}
	if got := g.SourceComponentsReaching(1); !reflect.DeepEqual(got, [][]int{{1, 2}}) {
		t.Fatalf("reaching 1 = %v", got)
	}
}

func TestIsClique(t *testing.T) {
	g := New()
	for _, u := range []int{1, 2, 3} {
		for _, w := range []int{1, 2, 3} {
			if u != w {
				mustEdge(t, g, u, w)
			}
		}
	}
	mustEdge(t, g, 3, 4)
	if !g.IsClique([]int{1, 2, 3}) {
		t.Fatal("clique not recognized")
	}
	if g.IsClique([]int{1, 2, 3, 4}) {
		t.Fatal("non-clique accepted")
	}
	if !g.IsClique([]int{2}) {
		t.Fatal("singleton must be a clique")
	}
}

// randomMinInDegreeGraph builds a random simple digraph on n nodes where
// every node has in-degree at least delta (as induced by "waiting for delta
// messages" in FLP stage 1).
func randomMinInDegreeGraph(rng *rand.Rand, n, delta int) *Digraph {
	g := New()
	for v := 0; v < n; v++ {
		g.AddNode(v)
		perm := rng.Perm(n)
		added := 0
		for _, u := range perm {
			if u == v {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
			added++
			if added >= delta {
				break
			}
		}
	}
	// Sprinkle extra random edges.
	extra := rng.Intn(n * 2)
	for i := 0; i < extra; i++ {
		u, w := rng.Intn(n), rng.Intn(n)
		if u != w {
			_ = g.AddEdge(u, w)
		}
	}
	return g
}

// TestLemma6SourceComponentSize checks Lemma 6: every finite directed simple
// graph with min in-degree delta >= 1 has a source component of size at
// least delta+1 — and, as used in Section VI, at most floor(n/(delta+1))
// source components exist.
func TestLemma6SourceComponentSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(40)
		delta := 1 + rng.Intn(n-1)
		g := randomMinInDegreeGraph(rng, n, delta)
		if got := g.MinInDegree(); got < delta {
			t.Fatalf("generator broken: min in-degree %d < %d", got, delta)
		}
		srcs := g.SourceComponents()
		if len(srcs) == 0 {
			t.Fatalf("trial %d: no source components (n=%d delta=%d)", trial, n, delta)
		}
		foundBig := false
		for _, c := range srcs {
			// Every source component of a graph with min in-degree delta
			// has size >= delta+1 (all in-neighbours of a member are members).
			if len(c) < delta+1 {
				t.Fatalf("trial %d: source component %v smaller than delta+1=%d", trial, c, delta+1)
			}
			foundBig = true
		}
		if !foundBig {
			t.Fatalf("trial %d: Lemma 6 witness missing", trial)
		}
		if max := n / (delta + 1); len(srcs) > max {
			t.Fatalf("trial %d: %d source components > floor(n/(delta+1)) = %d", trial, len(srcs), max)
		}
		// Section VI: when 2*delta >= n there can be only one source component.
		if 2*delta >= n && len(srcs) != 1 {
			t.Fatalf("trial %d: 2*delta >= n but %d source components", trial, len(srcs))
		}
	}
}

// TestLemma7EveryNodeReachedBySource checks Lemma 7's consequence: every
// node has a directed incoming path from all processes of at least one
// source component.
func TestLemma7EveryNodeReachedBySource(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(30)
		delta := 1 + rng.Intn(n-1)
		g := randomMinInDegreeGraph(rng, n, delta)
		for _, v := range g.Nodes() {
			comps := g.SourceComponentsReaching(v)
			if len(comps) == 0 {
				t.Fatalf("trial %d: node %d not reached by any source component", trial, v)
			}
			for _, c := range comps {
				if len(c) < delta+1 {
					t.Fatalf("trial %d: reaching component %v smaller than %d", trial, c, delta+1)
				}
			}
		}
	}
}

// TestSourceComponentsReachingAgreesWithGlobal cross-checks the local
// (ancestor-subgraph) computation against a brute-force global one.
func TestSourceComponentsReachingAgreesWithGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		g := New()
		for v := 0; v < n; v++ {
			g.AddNode(v)
		}
		edges := rng.Intn(n * 3)
		for i := 0; i < edges; i++ {
			u, w := rng.Intn(n), rng.Intn(n)
			if u != w {
				_ = g.AddEdge(u, w)
			}
		}
		global := g.SourceComponents()
		for _, v := range g.Nodes() {
			local := g.SourceComponentsReaching(v)
			// Brute force: which global source components reach v?
			var want [][]int
			for _, c := range global {
				reach := g.Reachable(c[0])
				for _, r := range reach {
					if r == v {
						want = append(want, c)
						break
					}
				}
			}
			if !reflect.DeepEqual(local, want) {
				t.Fatalf("trial %d node %d: local %v != global %v", trial, v, local, want)
			}
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	// Build the same graph twice with different insertion orders.
	g1, g2 := New(), New()
	edges := [][2]int{{1, 2}, {2, 3}, {3, 1}, {3, 4}, {5, 4}}
	for _, e := range edges {
		mustEdge(t, g1, e[0], e[1])
	}
	for i := len(edges) - 1; i >= 0; i-- {
		mustEdge(t, g2, edges[i][0], edges[i][1])
	}
	if !reflect.DeepEqual(g1.SCCs(), g2.SCCs()) {
		t.Fatal("SCCs depend on insertion order")
	}
	if !reflect.DeepEqual(g1.SourceComponents(), g2.SourceComponents()) {
		t.Fatal("SourceComponents depend on insertion order")
	}
	if !reflect.DeepEqual(g1.Nodes(), g2.Nodes()) {
		t.Fatal("Nodes depend on insertion order")
	}
}
