// Package testutil holds test helpers shared by the root package's and
// internal/explore's suites. It depends only on the simulation kernel so
// that explore's own in-package tests can import it (a dependency on
// explore would cycle); keeping the helpers in one package — rather than
// copying them per suite — is what lets the differential matrices of the
// fingerprint, symmetry, and partial-order-reduction layers assert witness
// validity identically.
package testutil

import (
	"testing"

	"kset/internal/sim"
)

// RevalidateWitness asserts that an explore witness's replayed run
// concretely exhibits the violation its kind claims: replay already
// re-executed the schedule step by step (any divergence would have
// errored), so the final configuration's decisions/blocked set are real.
// Pass the witness's Kind and Run. It fails the test when the run is
// missing, when a "disagreement" witness replays to fewer than two distinct
// decisions, or when a "blocking" witness replays with no blocked process.
func RevalidateWitness(t testing.TB, kind string, run *sim.Run) {
	t.Helper()
	if run == nil || run.Final == nil {
		t.Fatal("witness has no replayed run")
	}
	switch kind {
	case "disagreement":
		if len(run.DistinctDecisions()) < 2 {
			t.Fatalf("disagreement witness replays to decisions %v", run.DistinctDecisions())
		}
	case "blocking":
		if len(run.Blocked) == 0 {
			t.Fatal("blocking witness replays with no blocked process")
		}
	default:
		t.Fatalf("unknown witness kind %q", kind)
	}
}
