package kset

import (
	"fmt"
	"time"

	"kset/internal/algorithms"
	"kset/internal/core"
	"kset/internal/network"
	"kset/internal/sim"
	"kset/internal/tindep"
)

// ExperimentTIndependence reproduces Section IV: the classic progress
// conditions expressed as T-independence, checked empirically against the
// protocols. f-resilient MinWait satisfies {|S| >= n-f}-independence
// (including the strong variant) and the Lemma 4 partition family; no
// waiting protocol is wait-free; DecideOwn is obstruction-free.
func ExperimentTIndependence() (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "T-independence (Definition 6) of the protocols",
		Columns: []string{
			"algorithm", "family", "variant", "holds", "failing sets",
		},
	}
	n := 5
	inputs := DistinctInputs(n)

	fres, err := tindep.FResilient(n, 2)
	if err != nil {
		return nil, err
	}
	wf, err := tindep.WaitFree(n)
	if err != nil {
		return nil, err
	}
	lemma4 := tindep.Partition([]ProcessID{1, 2}, []ProcessID{3, 4, 5}) // n=5, f=3, l=2

	type check struct {
		alg     sim.Algorithm
		fam     tindep.Family
		opts    tindep.Options
		variant string
	}
	checks := []check{
		{algorithms.MinWait{F: 2}, fres, tindep.Options{}, "plain"},
		{algorithms.MinWait{F: 2}, fres, tindep.Options{Strong: true, WarmupSteps: 8}, "strong"},
		{algorithms.MinWait{F: 2}, wf, tindep.Options{MaxSteps: 2000}, "plain"},
		{algorithms.MinWait{F: 3}, lemma4, tindep.Options{}, "plain (Lemma 4)"},
		{algorithms.FLPKSet{F: 3}, lemma4, tindep.Options{}, "plain (Lemma 4)"},
		{algorithms.DecideOwn{}, tindep.ObstructionFree(n), tindep.Options{}, "plain"},
	}
	for _, c := range checks {
		rep, err := tindep.Check(c.alg, inputs, c.fam, c.opts)
		if err != nil {
			return nil, fmt.Errorf("E8: %s / %s: %w", c.alg.Name(), c.fam.Name, err)
		}
		t.AddRow(c.alg.Name(), c.fam.Name, c.variant, rep.Holds, len(rep.Failing))
	}
	return t, nil
}

// ExperimentCandidateVetting reproduces the Section III remark: feeding
// candidate algorithms to the Theorem 1 pipeline separates flawed ones
// (refuted with an explicit violation run) from conservative ones (a
// condition fails, typically (A)).
func ExperimentCandidateVetting() (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Theorem 1 as a vetting tool (Section III remark)",
		Columns: []string{
			"algorithm", "n", "k", "partition", "verdict", "detail",
		},
	}
	type vet struct {
		alg    sim.Algorithm
		n, k   int
		groups [][]ProcessID
		budget int
	}
	vets := []vet{
		{algorithms.DecideOwn{}, 5, 3, [][]ProcessID{{1}, {2}}, 0},
		{algorithms.FirstHeard{}, 6, 3, [][]ProcessID{{1, 2}, {3, 4}}, 1},
		{algorithms.MinWait{F: 3}, 5, 2, [][]ProcessID{{1, 2}}, 1}, // flawed at k=2 with f=3
		{algorithms.MinWait{F: 1}, 5, 2, [][]ProcessID{{1, 2}}, 1}, // correct for k=2: survives
		// Synchronous FloodSet dropped into the asynchronous model: its
		// rounds decouple from deliveries; the engine finds the split
		// (Theorem 2's "communication is asynchronous" hypothesis at work).
		{algorithms.RoundFlood{F: 2}, 5, 2, [][]ProcessID{{1, 2}}, 0},
	}
	for _, v := range vets {
		spec, err := core.NewPartitionSpec(v.n, v.k, v.groups)
		if err != nil {
			return nil, fmt.Errorf("E9: spec for %s: %w", v.alg.Name(), err)
		}
		rep, err := core.CheckImpossibility(core.Instance{
			Alg:             v.alg,
			Inputs:          DistinctInputs(v.n),
			Spec:            spec,
			DBarCrashBudget: v.budget,
			MaxConfigs:      60000,
			MaxSteps:        5000,
		})
		if err != nil {
			return nil, fmt.Errorf("E9: engine for %s: %w", v.alg.Name(), err)
		}
		verdict := "survives"
		detail := rep.Summary()
		if rep.Refuted {
			verdict = "flawed"
			detail = fmt.Sprintf("%s violation constructed", rep.Violation)
		}
		t.AddRow(v.alg.Name(), v.n, v.k, fmt.Sprintf("%v", v.groups), verdict, detail)
	}
	return t, nil
}

// ExperimentRuntimeAblation cross-checks the deterministic kernel against
// the goroutine runtime (E10): the same protocol under the same failure
// setting must satisfy the same agreement bound on both, and all decided
// values must be proposals.
func ExperimentRuntimeAblation() (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Runtime ablation: deterministic kernel vs goroutine network",
		Columns: []string{
			"algorithm", "n", "f (initial)", "bound", "kernel distinct", "concurrent distinct", "ok",
		},
	}
	type c10 struct {
		alg   sim.Algorithm
		n     int
		dead  []ProcessID
		bound int
	}
	cases := []c10{
		{algorithms.MinWait{F: 2}, 6, []ProcessID{6}, 3},
		{algorithms.MinWait{F: 3}, 7, []ProcessID{2, 5}, 4},
		{algorithms.FLPKSet{F: 2}, 6, []ProcessID{3}, 1}, // L=4, floor(6/4)=1
		{algorithms.FLPKSet{F: 3}, 6, []ProcessID{1, 2}, 2},
	}
	for _, c := range cases {
		krun, err := Simulate(c.alg, DistinctInputs(c.n), SimOptions{InitialDead: c.dead})
		if err != nil {
			return nil, fmt.Errorf("E10: kernel %s: %w", c.alg.Name(), err)
		}
		kd := len(krun.DistinctDecisions())

		res, err := network.Run(c.alg, DistinctInputs(c.n), network.Options{
			InitialDead: c.dead,
			Timeout:     15 * time.Second,
		})
		if err != nil {
			return nil, fmt.Errorf("E10: concurrent %s: %w", c.alg.Name(), err)
		}
		cd := len(res.DistinctDecisions())
		ok := kd <= c.bound && cd <= c.bound && !res.TimedOut && len(krun.Blocked) == 0
		t.AddRow(c.alg.Name(), c.n, len(c.dead), c.bound, kd, cd, ok)
	}
	return t, nil
}
