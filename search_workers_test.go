package kset

import "testing"

// TestSearchWorkersFacadeParity proves the SearchWorkers knob is purely a
// performance control on the public facade: the condition-(C) search finds
// the identical witness with identical stats at any worker count.
func TestSearchWorkersFacadeParity(t *testing.T) {
	defer func(w int) { SearchWorkers = w }(SearchWorkers)

	SearchWorkers = 1
	seqW, seqFound, err := FindConsensusFailure(NewMinWait(1), DistinctInputs(3), []ProcessID{1, 2, 3}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	SearchWorkers = 4
	parW, parFound, err := FindConsensusFailure(NewMinWait(1), DistinctInputs(3), []ProcessID{1, 2, 3}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if parFound != seqFound {
		t.Fatalf("parallel found=%t, sequential found=%t", parFound, seqFound)
	}
	if !seqFound {
		t.Fatal("MinWait{F:1} disagreement not found in 3-process system")
	}
	if parW.Kind != seqW.Kind || parW.Detail != seqW.Detail || parW.Stats != seqW.Stats {
		t.Fatalf("parallel witness diverged: %s %q %+v vs %s %q %+v",
			parW.Kind, parW.Detail, parW.Stats, seqW.Kind, seqW.Detail, seqW.Stats)
	}
}

// TestSearchWorkersBivalenceTable proves the E6 valence table — whose
// searches run on the parallel frontier when SearchWorkers > 1 — renders
// identically at any worker count.
func TestSearchWorkersBivalenceTable(t *testing.T) {
	defer func(w int) { SearchWorkers = w }(SearchWorkers)

	SearchWorkers = 1
	seq, err := ExperimentBivalence()
	if err != nil {
		t.Fatal(err)
	}
	SearchWorkers = 4
	par, err := ExperimentBivalence()
	if err != nil {
		t.Fatal(err)
	}
	if par.String() != seq.String() {
		t.Fatalf("E6 table changed under SearchWorkers=4:\n%s\nvs sequential:\n%s", par.String(), seq.String())
	}
}
