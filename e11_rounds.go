package kset

import (
	"fmt"

	"kset/internal/ho"
	"kset/internal/sim"
)

// ExperimentRoundModel realizes the Discussion section's outlook: the
// partitioning argument of Theorem 1 transported to the Heard-Of round
// model. For each (n, k) the heard-of adversary confines every process's
// heard-of sets to its group until the decision round; the flooding
// algorithm then decides one value per group — k distinct decisions — while
// the same algorithm under the complete (failure-free synchronous)
// assignment reaches consensus. The communication-predicate checkers
// confirm what separates the two runs: the partitioned assignment has an
// empty kernel (no process heard by all), the complete one does not.
func ExperimentRoundModel() (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Discussion outlook: the partition argument in the Heard-Of round model",
		Columns: []string{
			"algorithm", "n", "k", "assignment", "kernel nonempty", "rounds", "distinct decisions", "expected",
		},
		Notes: []string{
			"partitioned assignments confine HO sets to k groups for the decision window",
			"FloodMin decides unconditionally: one value per partition (the Theorem 1 violation shape)",
			"OneThirdRule decides only above the 2n/3 threshold: it stays safe inside partitions by never deciding — the HO incarnation of 'condition (A) fails'",
		},
	}
	cases := []struct {
		n, k int
	}{
		{4, 2}, {6, 2}, {6, 3}, {8, 4}, {9, 3},
	}
	for _, c := range cases {
		groups := make([][]sim.ProcessID, c.k)
		next := 1
		for gi := 0; gi < c.k; gi++ {
			size := c.n / c.k
			if gi < c.n%c.k {
				size++
			}
			for j := 0; j < size; j++ {
				groups[gi] = append(groups[gi], sim.ProcessID(next))
				next++
			}
		}
		const r = 3

		complete := ho.Complete(c.n)
		partitioned := ho.Partitioned(c.n, groups, r)

		full, err := ho.Execute(ho.FloodMin{R: r}, DistinctInputs(c.n), complete, 3*r)
		if err != nil {
			return nil, fmt.Errorf("E11: complete n=%d: %w", c.n, err)
		}
		part, err := ho.Execute(ho.FloodMin{R: r}, DistinctInputs(c.n), partitioned, 3*r)
		if err != nil {
			return nil, fmt.Errorf("E11: partitioned n=%d k=%d: %w", c.n, c.k, err)
		}

		t.AddRow("floodmin", c.n, c.k, "complete", ho.CheckNonemptyKernel(c.n, complete, r), full.Rounds,
			len(full.DistinctDecisions()), len(full.DistinctDecisions()) == 1)
		t.AddRow("floodmin", c.n, c.k, "partitioned", ho.CheckNonemptyKernel(c.n, partitioned, r), part.Rounds,
			len(part.DistinctDecisions()), len(part.DistinctDecisions()) == c.k)

		// The predicate-conditioned algorithm: decides under the complete
		// assignment, stays undecided (safe) inside sub-threshold
		// partitions for the whole window.
		const otrWindow = 12
		otrFull, err := ho.Execute(ho.OneThirdRule{}, DistinctInputs(c.n), complete, otrWindow)
		if err != nil {
			return nil, fmt.Errorf("E11: one-third complete n=%d: %w", c.n, err)
		}
		otrPart, err := ho.Execute(ho.OneThirdRule{}, DistinctInputs(c.n), ho.Partitioned(c.n, groups, otrWindow), otrWindow)
		if err != nil {
			return nil, fmt.Errorf("E11: one-third partitioned n=%d k=%d: %w", c.n, c.k, err)
		}
		t.AddRow("onethird", c.n, c.k, "complete", true, otrFull.Rounds,
			len(otrFull.DistinctDecisions()), len(otrFull.DistinctDecisions()) == 1)
		// Expected: no decisions at all when every group is below 2n/3.
		subThreshold := true
		for _, g := range groups {
			if 3*len(g) > 2*c.n {
				subThreshold = false
			}
		}
		otrOK := len(otrPart.Decisions) == 0 || !subThreshold
		t.AddRow("onethird", c.n, c.k, "partitioned", false, otrPart.Rounds,
			len(otrPart.DistinctDecisions()), otrOK)
	}
	return t, nil
}
