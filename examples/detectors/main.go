// Detectors: the failure-detector side of the paper (Section VII).
//
// Part 1 solves consensus with the pair (Sigma, Omega) — the k = 1
// endpoint of Corollary 13 — under crashes and message delays.
//
// Part 2 runs the Theorem 10 construction for 2 <= k <= n-2: partition
// detector histories let k partitions decide independently, and the
// reduction engine assembles the full violation run for the Sigma_k-based
// candidate algorithm, showing (Sigma_k, Omega_k) too weak for k-set
// agreement in that range.
//
// Run with:
//
//	go run ./examples/detectors
package main

import (
	"fmt"
	"log"

	"kset"
)

func main() {
	part1()
	part2()
}

func part1() {
	const n = 5
	fmt.Println("--- consensus from (Sigma, Omega), one mid-run crash ---")
	run, err := kset.Simulate(kset.NewSigmaOmega(), kset.DistinctInputs(n), kset.SimOptions{
		CrashAtTime: map[kset.ProcessID]int{3: 7},
		Detector:    kset.DetectorSpec{Kind: "sigma-omega", K: 1, GST: 10},
	})
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}
	fmt.Printf("decisions: %v, blocked: %v\n", run.DistinctDecisions(), run.Blocked)
	if d := len(run.DistinctDecisions()); d != 1 {
		log.Fatalf("expected consensus, got %d values", d)
	}
	fmt.Println("uniform consensus reached despite the crash.")
	fmt.Println()
}

func part2() {
	const (
		n = 6
		k = 3 // 2 <= k <= n-2: the impossible band of Corollary 13
	)
	fmt.Printf("--- Theorem 10 construction: n=%d, k=%d with (Sigma'_%d, Omega'_%d) ---\n", n, k, k, k)
	rep, merged, err := kset.Theorem10Construction(n, k, 80000)
	if err != nil {
		log.Fatalf("construction: %v", err)
	}
	fmt.Println(rep.Summary())
	if merged != nil {
		fmt.Printf("Lemma 12 merged run: %d distinct decisions across %d partitions (indistinguishable from solo runs: %t)\n",
			len(merged.Distinct), k, merged.IndistinguishableOK)
	}
	if rep.Refuted {
		fmt.Printf("violation run: decisions %v (> k = %d) — (Sigma_k, Omega_k) is too weak here,\n", rep.DistinctDecided, k)
		fmt.Println("matching Corollary 13: solvable iff k = 1 or k = n-1.")
	}
}
