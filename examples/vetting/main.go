// Vetting: use Theorem 1 as an algorithm-checking tool, as the paper's
// Section III suggests: "checking whether the runs of A are such that the
// conditions of Theorem 1 are satisfied will allow us to determine already
// at an early stage ... whether it is worthwhile to explore A further."
//
// We feed three candidate k-set agreement algorithms to the reduction
// engine. The flawed ones are refuted with a concrete full-system violation
// run; the correct one survives because condition (A) cannot be
// established (its partitions refuse to decide in isolation).
//
// Run with:
//
//	go run ./examples/vetting
package main

import (
	"fmt"
	"log"

	"kset"
)

func main() {
	type candidate struct {
		alg    kset.Algorithm
		n, k   int
		groups [][]kset.ProcessID
		budget int
		blurb  string
	}
	candidates := []candidate{
		{
			alg: kset.NewFirstHeard(), n: 6, k: 3,
			groups: [][]kset.ProcessID{{1, 2}, {3, 4}},
			budget: 1,
			blurb:  "decide min(own, first heard) — fast but not crash-tolerant",
		},
		{
			alg: kset.NewMinWait(3), n: 5, k: 2,
			groups: nil, // Theorem 2 partition below
			budget: 1,
			blurb:  "wait for n-f values, decide min — claimed for k=2 with f=3",
		},
		{
			alg: kset.NewMinWait(1), n: 5, k: 2,
			groups: [][]kset.ProcessID{{1, 2}},
			budget: 1,
			blurb:  "same protocol with f=1 — actually correct for k=2",
		},
	}

	for _, c := range candidates {
		fmt.Printf("candidate %s (%s)\n", c.alg.Name(), c.blurb)
		var spec kset.PartitionSpec
		var err error
		if c.groups == nil {
			spec, err = kset.Theorem2Partition(c.n, 3, c.k)
		} else {
			spec, err = kset.NewPartitionSpec(c.n, c.k, c.groups)
		}
		if err != nil {
			log.Fatalf("partition: %v", err)
		}
		rep, err := kset.CheckImpossibility(kset.ImpossibilityInstance{
			Alg:             c.alg,
			Inputs:          kset.DistinctInputs(c.n),
			Spec:            spec,
			DBarCrashBudget: c.budget,
			MaxConfigs:      60000,
			MaxSteps:        5000,
		})
		if err != nil {
			log.Fatalf("engine: %v", err)
		}
		fmt.Printf("  %s\n", rep.Summary())
		if rep.Refuted {
			fmt.Printf("  -> violation run: %d events, decisions %v, blocked %v\n",
				len(rep.Pasted.Events), rep.DistinctDecided, rep.BlockedInPasted)
		} else {
			fmt.Println("  -> survives this partition argument")
		}
		fmt.Println()
	}
}
