// Border: walk the exact solvability border of Theorem 8 — k-set agreement
// with f initially dead processes is solvable iff kn > (k+1)f.
//
// Below the border, the Section VI protocol decides with at most k values.
// At the border (kn = (k+1)f), the k+1-partition argument constructs a
// merged run, indistinguishable from k+1 solo runs, with k+1 distinct
// decisions — the paper's impossibility witness.
//
// Run with:
//
//	go run ./examples/border
package main

import (
	"fmt"
	"log"

	"kset"
)

func main() {
	fmt.Println("Theorem 8: k-set agreement with f initial crashes iff kn > (k+1)f")
	fmt.Println()

	// Solvable side: n=6, f=3, k=2 (12 > 9).
	{
		n, f, k := 6, 3, 2
		run, err := kset.Simulate(kset.NewFLPKSet(f), kset.DistinctInputs(n), kset.SimOptions{
			InitialDead: []kset.ProcessID{1, 4, 6},
		})
		if err != nil {
			log.Fatalf("solvable side: %v", err)
		}
		fmt.Printf("solvable (n=%d f=%d k=%d, kn=%d > (k+1)f=%d): %d distinct decisions, blocked %v\n",
			n, f, k, k*n, (k+1)*f, len(run.DistinctDecisions()), run.Blocked)
	}

	// Border: n=6, f=4, k=2 (12 = 12): the k+1-partition run.
	{
		n, f, k := 6, 4, 2
		rep, err := kset.MergedBorderRun(n, f, k)
		if err != nil {
			log.Fatalf("border: %v", err)
		}
		fmt.Printf("border   (n=%d f=%d k=%d, kn=%d = (k+1)f=%d): merged run has %d distinct decisions (> k!)\n",
			n, f, k, k*n, (k+1)*f, len(rep.Distinct))
		fmt.Printf("         groups decide values %v; indistinguishable from their solo runs: %t\n",
			rep.Distinct, rep.IndistinguishableOK)
	}

	// Sweep a band of parameters and print, per (n, f), the minimal k for
	// which k-set agreement is solvable with f initial crashes: by Theorem
	// 8 that is the smallest k with kn > (k+1)f, i.e. k > f/(n-f); every
	// smaller k is impossible.
	fmt.Println("\nminimal solvable k per (n, f) — every smaller k is impossible (Theorem 8):")
	for n := 3; n <= 9; n++ {
		fmt.Printf("  n=%d: ", n)
		for f := 1; f < n; f++ {
			kmin := f/(n-f) + 1
			fmt.Printf("f=%d:k>=%d  ", f, kmin)
		}
		fmt.Println()
	}
}
