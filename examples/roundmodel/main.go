// Roundmodel: the Discussion section's outlook, executably — the
// partitioning argument of Theorem 1 transported to the Heard-Of round
// model, plus the synchronous/asynchronous contrast behind Theorem 2.
//
// Part 1 runs the flooding algorithm under the complete heard-of
// assignment (consensus) and under the partitioned assignment (one decision
// per group), with the kernel communication predicate separating the two.
//
// Part 2 runs classic synchronous FloodSet consensus: correct under
// lock-step rounds with prompt delivery, refuted by the Theorem 1 engine
// the moment communication is asynchronous — exactly the hypothesis
// Theorem 2 isolates.
//
// Run with:
//
//	go run ./examples/roundmodel
package main

import (
	"fmt"
	"log"

	"kset"
)

func main() {
	part1()
	part2()
}

func part1() {
	fmt.Println("--- Heard-Of round model (Discussion outlook) ---")
	table, err := kset.ExperimentRoundModel()
	if err != nil {
		log.Fatalf("round model: %v", err)
	}
	fmt.Print(table.String())
}

func part2() {
	const n, f, k = 5, 2, 1 // FloodSet claims consensus (k=1) with f=2
	fmt.Println("--- synchronous FloodSet vs asynchronous communication ---")

	// Synchronous: lock-step rounds, prompt delivery — consensus works.
	// (Simulate's fair scheduler delivers promptly, which for this
	// protocol is as good as lock-step.)
	run, err := kset.Simulate(kset.NewRoundFlood(f), kset.DistinctInputs(n), kset.SimOptions{})
	if err != nil {
		log.Fatalf("synchronous run: %v", err)
	}
	fmt.Printf("prompt delivery: %d distinct decision(s) — consensus\n", len(run.DistinctDecisions()))

	// Asynchronous: the Theorem 1 engine refutes the same protocol.
	spec, err := kset.NewPartitionSpec(n, k+1, [][]kset.ProcessID{{1, 2}})
	if err != nil {
		log.Fatalf("partition: %v", err)
	}
	rep, err := kset.CheckImpossibility(kset.ImpossibilityInstance{
		Alg:             kset.NewRoundFlood(f),
		Inputs:          kset.DistinctInputs(n),
		Spec:            spec,
		DBarCrashBudget: 0,
		MaxConfigs:      60000,
	})
	if err != nil {
		log.Fatalf("engine: %v", err)
	}
	fmt.Printf("asynchronous communication: %s\n", rep.Summary())
	if rep.Refuted {
		fmt.Println("the engine constructed the violating run — Theorem 2's hypothesis in action.")
	}
}
