// Quickstart: solve k-set agreement with the generalized FLP initial-crash
// protocol of Section VI of the paper.
//
// A system of n = 6 processes tolerates f = 3 initial crashes with
// L = n - f = 3; Theorem 8 guarantees k-set agreement for
// k = floor(n/L) = 2. We crash two processes at the start, run the
// protocol under a fair asynchronous schedule, and print the decisions.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kset"
)

func main() {
	const (
		n = 6
		f = 3
		k = 2 // floor(n / (n-f))
	)

	alg := kset.NewFLPKSet(f)
	inputs := kset.DistinctInputs(n)

	fmt.Printf("running %s on n=%d processes, proposals %v\n", alg.Name(), n, inputs)
	fmt.Printf("processes 2 and 5 are initially dead (within the f=%d budget)\n\n", f)

	run, err := kset.Simulate(alg, inputs, kset.SimOptions{
		InitialDead: []kset.ProcessID{2, 5},
	})
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}

	for i, v := range run.Decisions() {
		p := kset.ProcessID(i + 1)
		switch {
		case run.Final.Crashed(p):
			fmt.Printf("  p%d: crashed\n", p)
		case v == kset.NoValue:
			fmt.Printf("  p%d: undecided\n", p)
		default:
			fmt.Printf("  p%d: decided %d\n", p, v)
		}
	}

	distinct := run.DistinctDecisions()
	fmt.Printf("\ndistinct decisions: %v (k-agreement bound: %d)\n", distinct, k)
	if len(distinct) > k {
		log.Fatalf("k-agreement violated!")
	}
	if len(run.Blocked) > 0 {
		log.Fatalf("termination violated: %v blocked", run.Blocked)
	}
	fmt.Println("k-set agreement reached: every correct process decided, at most k values.")

	// The same protocol under a partitioning adversary: two groups of
	// L = 3 decide in isolation — the runs that make Theorem 8's bound
	// tight.
	fmt.Println("\n--- partitioned run (groups {1,2,3} | {4,5,6}) ---")
	prun, err := kset.Simulate(alg, inputs, kset.SimOptions{
		Partition: [][]kset.ProcessID{{1, 2, 3}, {4, 5, 6}},
	})
	if err != nil {
		log.Fatalf("partitioned simulation: %v", err)
	}
	fmt.Printf("distinct decisions under partition: %v (still <= k = %d)\n",
		prun.DistinctDecisions(), k)
}
