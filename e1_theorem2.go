package kset

import (
	"context"
	"fmt"

	"kset/internal/algorithms"
	"kset/internal/core"
)

// E1Params parameterizes the Theorem 2 border sweep.
type E1Params struct {
	// MinN and MaxN bound the system sizes swept.
	MinN, MaxN int
	// MaxConfigs bounds each subsystem exploration.
	MaxConfigs int
	// Search configures the engine searches; nil means default options
	// (equivalent to NewSearcher(Options{})).
	Search *Searcher
}

// DefaultE1Params returns the sweep used by cmd/experiments and the E1
// benchmark.
func DefaultE1Params() E1Params {
	return E1Params{MinN: 4, MaxN: 6, MaxConfigs: 60000}
}

// ExperimentTheorem2Border sweeps (n, f, k) across the Theorem 2 border
// k <= (n-1)/(n-f). Inside the bound, the Theorem 1 engine must refute the
// f-resilient candidate algorithm (MinWait) by constructing a full violation
// run; outside the bound (k > f), a fair run of the same algorithm must
// decide with at most k distinct values — matching the paper's claim that
// the border is exact.
func ExperimentTheorem2Border(p E1Params) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Theorem 2 border: k-set agreement with f faults, partially synchronous processes",
		Columns: []string{
			"n", "f", "k", "regime", "outcome", "detail",
		},
		Notes: []string{
			"regime 'impossible' means k <= (n-1)/(n-f) (Theorem 2); 'solvable' means f < k (classic f-resilience)",
			"impossible rows: the Theorem 1 engine constructs the violating run for the candidate algorithm",
			"solvable rows: a fair run decides with <= k distinct values",
		},
	}
	// Every (n, f, k) cell is independent, so the sweep fans out over the
	// SweepWorkers pool; per-cell result slots keep the row order identical
	// to the sequential triple loop.
	type cell struct{ n, f, k int }
	var cells []cell
	for n := p.MinN; n <= p.MaxN; n++ {
		for f := 1; f < n; f++ {
			for k := 1; k <= 3 && k < n; k++ {
				cells = append(cells, cell{n, f, k})
			}
		}
	}
	search := orDefault(p.Search)
	rows, err := sweepRows(len(cells), func(i int) ([]string, error) {
		n, f, k := cells[i].n, cells[i].f, cells[i].k
		l := n - f
		switch {
		case k*l+1 <= n:
			// Impossible regime: apply the engine.
			rep, err := search.VerifyTheorem2Row(context.Background(), n, f, k, p.MaxConfigs)
			if err != nil {
				return nil, fmt.Errorf("E1: engine n=%d f=%d k=%d: %w", n, f, k, err)
			}
			outcome := "NOT REFUTED"
			detail := rep.Summary()
			if rep.Refuted {
				outcome = "refuted"
				detail = fmt.Sprintf("%s violation, %d distinct decisions in pasted run",
					rep.Violation, len(rep.DistinctDecided))
			}
			return rowOf(n, f, k, "impossible", outcome, detail), nil
		case f < k:
			// Solvable regime: run the f-resilient algorithm fairly.
			run, err := Simulate(algorithms.MinWait{F: f}, DistinctInputs(n), SimOptions{})
			if err != nil {
				return nil, fmt.Errorf("E1: fair run n=%d f=%d k=%d: %w", n, f, k, err)
			}
			d := len(run.DistinctDecisions())
			outcome := "decided"
			if d > k {
				outcome = "AGREEMENT BROKEN"
			}
			return rowOf(n, f, k, "solvable", outcome, fmt.Sprintf("%d distinct decisions (<= k)", d)), nil
		default:
			// Between the borders: neither Theorem 2 nor plain
			// f-resilience covers (k <= f but k > (n-1)/(n-f));
			// Theorem 2's Corollary 5 still applies with all-f late
			// crashes; recorded for the sweep's completeness.
			return rowOf(n, f, k, "gap", "-", "outside both constructions"), nil
		}
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// VerifyTheorem2Row runs the engine for one (n, f, k) inside the bound and
// returns the report — the programmatic form of an E1 row, used by tests.
// It reads the deprecated Search* globals via DefaultSearcher; new code
// should call the Searcher method.
func VerifyTheorem2Row(n, f, k, maxConfigs int) (*core.Report, error) {
	return DefaultSearcher().VerifyTheorem2Row(context.Background(), n, f, k, maxConfigs)
}

// VerifyTheorem2Row runs the Theorem 2 engine instance for one (n, f, k)
// inside the bound with this Searcher's knobs: MinWait under the Lemma 3
// partition with a one-crash subsystem adversary.
func (s *Searcher) VerifyTheorem2Row(ctx context.Context, n, f, k, maxConfigs int) (*core.Report, error) {
	spec, err := core.Theorem2Partition(n, f, k)
	if err != nil {
		return nil, err
	}
	return s.CheckImpossibility(ctx, core.Instance{
		Alg:             algorithms.MinWait{F: f},
		Inputs:          DistinctInputs(n),
		Spec:            spec,
		DBarCrashBudget: 1,
		MaxConfigs:      maxConfigs,
	})
}
