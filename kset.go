// Package kset is a reproduction, as an executable Go library, of
//
//	Biely, Robinson, Schmid: "Easy Impossibility Proofs for k-Set
//	Agreement in Message Passing Systems" (OPODIS 2011).
//
// The library contains a deterministic message-passing simulator following
// the paper's Section II computing model, the failure-detector framework of
// Sections II-C and VII (Sigma_k, Omega_k, and the partition detector of
// Definition 7), the agreement protocols the paper builds on (the
// generalized FLP initial-crash protocol of Section VI, the classic
// f-resilient min-wait protocol, ballot consensus from (Sigma, Omega)), and
// — as the primary contribution — an executable version of Theorem 1: a
// reduction engine that mechanically constructs the partitioned and pasted
// runs of the paper's impossibility proofs and verifies conditions (A)-(D)
// on concrete algorithms.
//
// This root package is the public API: it re-exports the simulator
// vocabulary, provides convenience constructors and run helpers, and hosts
// the experiment runners (E1-E12) that regenerate every theorem-level
// result of the paper; see EXPERIMENTS.md for the index.
package kset

import (
	"context"
	"fmt"

	"kset/internal/algorithms"
	"kset/internal/core"
	"kset/internal/explore"
	"kset/internal/fd"
	"kset/internal/sched"
	"kset/internal/sim"
)

// Core vocabulary, re-exported from the simulation kernel.
type (
	// Value is a proposal or decision value.
	Value = sim.Value
	// ProcessID identifies a process (1..n).
	ProcessID = sim.ProcessID
	// Algorithm is a deterministic process state machine factory.
	Algorithm = sim.Algorithm
	// State is an immutable process state.
	State = sim.State
	// Run is a recorded finite run prefix.
	Run = sim.Run
	// Message is a message in transit.
	Message = sim.Message
	// Configuration is a global system configuration.
	Configuration = sim.Configuration
)

// NoValue is the undecided output.
const NoValue = sim.NoValue

// Re-exported engine types.
type (
	// PartitionSpec fixes the Theorem 1 sets D_1..D_{k-1} and D-bar.
	PartitionSpec = core.PartitionSpec
	// ImpossibilityReport is the Theorem 1 pipeline outcome.
	ImpossibilityReport = core.Report
	// ImpossibilityInstance parameterizes the Theorem 1 pipeline.
	ImpossibilityInstance = core.Instance
)

// NewMinWait returns the classic f-resilient protocol: broadcast, wait for
// n-f values, decide the minimum (solves k-set agreement for f < k).
func NewMinWait(f int) Algorithm { return algorithms.MinWait{F: f} }

// NewFLPKSet returns the generalized FLP initial-crash protocol of Section
// VI with L = n-f (solves k-set agreement for kn > (k+1)f, Theorem 8).
func NewFLPKSet(f int) Algorithm { return algorithms.FLPKSet{F: f} }

// NewSigmaOmega returns ballot-based consensus from (Sigma, Omega) — the
// k = 1 endpoint of Corollary 13.
func NewSigmaOmega() Algorithm { return algorithms.SigmaOmega{} }

// NewQuorumMin returns the flawed Sigma_k-based candidate used by the
// vetting experiments.
func NewQuorumMin() Algorithm { return algorithms.QuorumMin{} }

// NewDecideOwn returns the trivially flawed candidate that decides its own
// proposal immediately.
func NewDecideOwn() Algorithm { return algorithms.DecideOwn{} }

// NewFirstHeard returns the flawed fast candidate that decides on first
// reception.
func NewFirstHeard() Algorithm { return algorithms.FirstHeard{} }

// NewRoundFlood returns the classic synchronous FloodSet consensus (decide
// after F+1 lock-step rounds). It is correct under synchronous processes
// with prompt reliable delivery and refuted by the Theorem 1 engine under
// asynchronous communication — Theorem 2's hypothesis made concrete.
func NewRoundFlood(f int) Algorithm { return algorithms.RoundFlood{F: f} }

// NewSingletonQuorum returns the Sigma_{n-1}-based (n-1)-set agreement
// protocol (the k = n-1 endpoint of Corollary 13): unconditional safety by
// quorum intersection, with the liveness condition documented on the type.
func NewSingletonQuorum() Algorithm { return algorithms.SingletonQuorum{} }

// NewAlgorithm maps a CLI/API algorithm name to its constructor: "minwait",
// "flpkset", "sigmaomega", "quorummin", "decideown", "firstheard",
// "roundflood", or "singletonquorum". f parameterizes the resilience-bound
// algorithms and is ignored by the rest. The shared registry of
// cmd/impossibility and the ksetd job server, so the two spell instances
// identically.
func NewAlgorithm(name string, f int) (Algorithm, error) {
	switch name {
	case "minwait":
		return NewMinWait(f), nil
	case "flpkset":
		return NewFLPKSet(f), nil
	case "sigmaomega":
		return NewSigmaOmega(), nil
	case "quorummin":
		return NewQuorumMin(), nil
	case "decideown":
		return NewDecideOwn(), nil
	case "firstheard":
		return NewFirstHeard(), nil
	case "roundflood":
		return NewRoundFlood(f), nil
	case "singletonquorum":
		return NewSingletonQuorum(), nil
	default:
		return nil, fmt.Errorf("kset: unknown algorithm %q", name)
	}
}

// DistinctInputs returns n pairwise distinct proposal values (Theorem 1
// requires runs in which every process proposes a distinct value; |V| > n).
func DistinctInputs(n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = Value(100 + i)
	}
	return out
}

// Theorem2Partition builds the partition of Theorem 2's proof (Lemma 3).
func Theorem2Partition(n, f, k int) (PartitionSpec, error) {
	return core.Theorem2Partition(n, f, k)
}

// Theorem10Partition builds the partition of Theorem 10's proof.
func Theorem10Partition(n, k int) (PartitionSpec, error) {
	return core.Theorem10Partition(n, k)
}

// NewPartitionSpec builds an explicit partition: k-1 disjoint decider
// groups, with the remaining processes forming D-bar.
func NewPartitionSpec(n, k int, groups [][]ProcessID) (PartitionSpec, error) {
	return core.NewPartitionSpec(n, k, groups)
}

// CheckImpossibility runs the Theorem 1 pipeline.
func CheckImpossibility(inst ImpossibilityInstance) (*ImpossibilityReport, error) {
	return core.CheckImpossibility(inst)
}

// SimOptions configures Simulate.
type SimOptions struct {
	// InitialDead processes never take a step (initial crashes).
	InitialDead []ProcessID
	// CrashAtTime schedules mid-run crashes (global time).
	CrashAtTime map[ProcessID]int
	// Partition, when nonempty, delays all cross-group messages until every
	// process has decided or crashed.
	Partition [][]ProcessID
	// Detector selects a failure-detector oracle; nil for none.
	Detector DetectorSpec
	// MaxSteps bounds the run (0 = default).
	MaxSteps int
}

// DetectorSpec selects and parameterizes a failure-detector oracle for
// Simulate. The zero value means "no detector".
type DetectorSpec struct {
	// Kind is "", "sigma-omega", or "partition" (the Definition 7 detector
	// over SimOptions.Partition).
	Kind string
	// K is the detector index k (Sigma_k, Omega_k).
	K int
	// GST is Omega's stabilization time.
	GST int
}

// Simulate runs the algorithm under a fair MASYNC scheduler with the given
// failure and partition setup and returns the recorded run.
func Simulate(alg Algorithm, inputs []Value, opts SimOptions) (*Run, error) {
	n := len(inputs)
	cp := sched.CrashPlan{
		InitialDead: opts.InitialDead,
		CrashAtTime: opts.CrashAtTime,
	}
	pattern := fd.NewPattern(n).WithInitiallyDead(opts.InitialDead...)
	for p, t := range opts.CrashAtTime {
		pattern = pattern.WithCrash(p, t)
	}

	var oracle sched.Oracle
	switch opts.Detector.Kind {
	case "":
	case "sigma-omega":
		k := opts.Detector.K
		if k <= 0 {
			k = 1
		}
		oracle = fd.CombinedOracle{
			Sigma: fd.SigmaOracle{K: k, Pattern: pattern},
			Omega: fd.OmegaOracle{K: k, Pattern: pattern, GST: opts.Detector.GST},
		}
	case "partition":
		if len(opts.Partition) == 0 {
			return nil, fmt.Errorf("kset: partition detector requires SimOptions.Partition")
		}
		k := opts.Detector.K
		if k <= 0 {
			k = len(opts.Partition)
		}
		oracle = fd.PartitionCombinedOracle{
			Sigma: fd.NewPartitionSigmaOracle(opts.Partition, pattern),
			Omega: fd.OmegaOracle{K: k, Pattern: pattern, GST: opts.Detector.GST},
		}
	default:
		return nil, fmt.Errorf("kset: unknown detector kind %q", opts.Detector.Kind)
	}

	var gate sched.Gate
	if len(opts.Partition) > 0 {
		gate = sched.PartitionUntilDecidedGate(opts.Partition, fd.AllProcesses(n))
	}
	// Construction-time plan validation: out-of-range or duplicate process
	// ids surface here as typed sched.PlanErrors instead of as downstream
	// scheduler misbehaviour (f = -1: Simulate imposes no resilience bound).
	if err := cp.Validate(n, -1); err != nil {
		return nil, fmt.Errorf("kset: %w", err)
	}
	s := &sched.Fair{
		Crash:  cp,
		Gate:   gate,
		Oracle: oracle,
		Stop:   sched.AllCorrectDecided(cp),
	}
	return sim.Execute(alg, inputs, s, sim.Options{MaxSteps: opts.MaxSteps})
}

// SearchWorkers caps the number of goroutines expanding the frontier of
// each condition-(C) state-space search (FindConsensusFailure, the E6
// valence analyses, and any engine instance configured for breadth-first
// search). Zero, the default, means GOMAXPROCS; 1 forces the exact
// sequential legacy search. Whatever the worker count, parallel searches
// return bit-identical results to the sequential ones — same visited set,
// same witness, same stats — so the knob is purely a performance control.
// It composes with SweepWorkers: sweeps parallelize across independent
// experiment cells, SearchWorkers parallelizes inside one search.
//
// Deprecated: package globals cannot configure concurrent searches safely.
// Construct an Options value and a Searcher instead (see options.go); the
// global remains as the seed of DefaultSearcher.
var SearchWorkers = 0

// SearchSymmetry enables orbit-canonical revisit detection in every
// condition-(C) state-space search the facade spawns (FindConsensusFailure
// and the E6 valence analyses): configurations that are process-renamings
// of each other — under permutations preserving the proposal assignment and
// the live set — are explored once, which shrinks the visited space by up
// to the stabilizer's size on instances with repeated proposals while
// keeping every reported witness a concrete, replayable run. Proposals that
// are pairwise distinct (the Theorem 1 requirement) leave nothing to
// collapse, so the engine experiments are unaffected; uniform- and
// block-input searches speed up substantially. Default off. A performance
// control for the equivariant algorithms (MinWait, QuorumMin, FirstHeard,
// DecideOwn) and a sound no-op for the rest — notably FLPKSet, whose
// minimum-id decide rule is not renaming-equivariant and which therefore
// stays on concrete hashes (see explore.Options.Symmetry for the soundness
// discussion).
//
// Deprecated: use Options.Symmetry with a Searcher; the global remains as
// the seed of DefaultSearcher.
var SearchSymmetry = false

// SearchPOR enables commutativity-based partial-order reduction in every
// condition-(C) state-space search the facade spawns (FindConsensusFailure
// and the E6 valence analyses): once every live process's state proves —
// through the opt-in sim.SendQuiescent interface — that its sending phase
// is over, steps of distinct processes touch disjoint state and commute, so
// each expansion keeps only one delivering process instead of all
// interleavings — crashes against the remaining budget and pending
// decision steps are deferred by commutation, never lost — and revisit
// detection collapses behaviourally inert crashed-slot content
// (sim.Configuration.LiveFingerprint). Verdicts, witnesses' replayability,
// and the valence tables are exactly those of the unreduced search; only
// the visited-node count
// shrinks. The reduction composes multiplicatively with SearchSymmetry —
// the two cut orthogonal axes of redundancy — and is a full, sound no-op
// for oracle-backed searches (E5's detector sweeps); for algorithms
// without sim.SendQuiescent only the inert-crashed-slot collapsing
// remains active, which is sound for any algorithm. Default off. See
// explore.Options.POR for the soundness argument.
//
// Deprecated: use Options.POR with a Searcher; the global remains as the
// seed of DefaultSearcher.
var SearchPOR = false

// SearchStore selects the memory regime of every condition-(C) state-space
// search the facade spawns: "" or "inmem" keeps the default arena-backed
// engine (full parent chains, fastest witness replay); "frontier" retains
// only the compact ~16 bytes-per-state fingerprint visited set plus the
// current and next BFS levels, reconstructing witnesses by a bounded
// deterministic re-search; "spill" additionally streams sealed levels to a
// temporary disk file (8 bytes per state) so witnesses and checkpoints
// never re-search. Verdicts, stats, and witnesses are bit-identical across
// the three stores at every worker count — the knob trades peak memory
// against witness-reconstruction time, nothing else. The bounded stores are
// what let exhaustive verification runs (E13's uniform Theorem 2 instances)
// complete under a gigabyte-scale GOMEMLIMIT where the arena engine
// truncates or thrashes. See explore.Options.Store and README "Memory &
// checkpoints".
//
// Deprecated: use Options.Store with a Searcher; the global remains as the
// seed of DefaultSearcher.
var SearchStore = ""

// SearchCheckpoint, when non-empty, names a directory in which truncated
// bounded breadth-first searches persist their paused state: a search that
// stops at its MaxConfigs budget writes a small self-keyed checkpoint file
// (the level-generation log, 8 bytes per visited state — the frontier and
// visited set regenerate from it) and a later identical search resumes
// where it stopped instead of starting over, so truncation becomes "pause",
// not "lose everything". Requires a bounded SearchStore. Checkpoints are
// keyed by a digest of the search instance, so many experiments can share
// one directory. See explore.Options.Checkpoint.
//
// Deprecated: use Options.Checkpoint with a Searcher; the global remains
// as the seed of DefaultSearcher.
var SearchCheckpoint = ""

// SearchFaults selects the fault model of every condition-(C) state-space
// search the facade spawns, in explore.ParseFaults form: "" or "crash" keeps
// the crash-only adversary (bit-identical to the engine before the fault
// layer existed — the differential tests pin this); "send-omission",
// "receive-omission", or "byzantine", optionally suffixed ":budget" (fault
// events per process, default 1) and ":maxfaulty" (distinct faulty
// processes, default unbounded), arms the corresponding budgeted fault
// branching in the adversary. Witnesses remain concrete replayable runs
// whose fault steps re-execute exactly. Symmetry reduction extends soundly
// to fault searches (spent budgets fold into the orbit signatures); POR
// stands down as a sound no-op under a non-crash model, exactly as it does
// under oracles. Default "".
//
// Deprecated: use Options.Faults with a Searcher; the global remains as
// the seed of DefaultSearcher.
var SearchFaults = ""

// SearchConfig bundles the facade's search knobs in CLI spelling, one field
// per Search* global. Commands parse their flags into a SearchConfig and
// mirror it with ApplySearchConfig: a single shared mapping instead of
// per-command assignment lists, so a knob added here cannot be wired into
// one command's search path and silently dropped from another's (the
// -symmetry/-por theorem10-path drift this replaced).
//
// Deprecated: construct an Options value (the same fields) and a Searcher
// with NewSearcher instead of mirroring knobs into the globals.
type SearchConfig struct {
	// Workers mirrors SearchWorkers.
	Workers int
	// Symmetry mirrors SearchSymmetry.
	Symmetry bool
	// POR mirrors SearchPOR.
	POR bool
	// Store mirrors SearchStore ("", "inmem", "frontier", "spill").
	Store string
	// Checkpoint mirrors SearchCheckpoint.
	Checkpoint string
	// Faults mirrors SearchFaults (explore.ParseFaults spelling).
	Faults string
}

// ApplySearchConfig validates cfg and mirrors it into the facade's Search*
// globals, returning an error — and leaving the globals untouched — when a
// spelling does not parse.
//
// Deprecated: use NewSearcher(Options{...}) and pass the Searcher to the
// search entry points; mutating the globals cannot configure concurrent
// searches safely. The shim remains so global-configured tests and
// examples keep passing.
func ApplySearchConfig(cfg SearchConfig) error {
	if _, err := explore.ParseStore(cfg.Store); err != nil {
		return err
	}
	if _, err := explore.ParseFaults(cfg.Faults); err != nil {
		return err
	}
	SearchWorkers = cfg.Workers
	SearchSymmetry = cfg.Symmetry
	SearchPOR = cfg.POR
	SearchStore = cfg.Store
	SearchCheckpoint = cfg.Checkpoint
	SearchFaults = cfg.Faults
	return nil
}

// FindConsensusFailure searches the subsystem of live processes for a
// disagreement or blocking witness of the algorithm under adversarial
// scheduling with the given crash budget — the condition (C) helper exposed
// on its own for examples and CLI use. It reads the deprecated Search*
// globals via DefaultSearcher; new code should call
// Searcher.FindConsensusFailure, which adds context cancellation and
// progress reporting.
func FindConsensusFailure(alg Algorithm, inputs []Value, live []ProcessID, crashBudget, maxConfigs int) (*explore.Witness, bool, error) {
	return DefaultSearcher().FindConsensusFailure(context.Background(), SearchRequest{
		Alg:         alg,
		Inputs:      inputs,
		Live:        live,
		CrashBudget: crashBudget,
		MaxConfigs:  maxConfigs,
	})
}
