package kset

import (
	"context"
	"fmt"

	"kset/internal/algorithms"
	"kset/internal/core"
	"kset/internal/fd"
	"kset/internal/sched"
	"kset/internal/sim"
)

// E5Params parameterizes the failure-detector border experiment.
type E5Params struct {
	MinN, MaxN int
	MaxConfigs int
	// Search configures the engine searches; nil means default options
	// (equivalent to NewSearcher(Options{})).
	Search *Searcher
}

// DefaultE5Params returns the sweep used by cmd/experiments and benchmarks.
func DefaultE5Params() E5Params {
	return E5Params{MinN: 5, MaxN: 6, MaxConfigs: 80000}
}

// ExperimentFailureDetectorBorder reproduces Theorem 10 and Corollary 13:
// with the failure-detector family (Sigma_k, Omega_k),
//
//   - k = 1 is solvable: the ballot protocol decides (consensus from
//     (Sigma, Omega), citing Delporte-Gallet et al.);
//   - 2 <= k <= n-2 is impossible: the Theorem 1 engine, instantiated with
//     the partition detector (Sigma'_k, Omega'_k) of Definition 7, refutes
//     the Sigma_k-based candidate algorithm, and the pasted run's detector
//     history is machine-checked to satisfy Definitions 4 and 5 (Lemma 9 /
//     Lemma 11);
//   - k = n-1 is solvable: reproduced with the classic (n-2)-resilient
//     protocol (decide min of 2 values) as the documented substitute for
//     Bonnet-Raynal's Sigma_{n-1} algorithm (see DESIGN.md).
func ExperimentFailureDetectorBorder(p E5Params) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Theorem 10 / Corollary 13: k-set agreement with (Sigma_k, Omega_k)",
		Columns: []string{
			"n", "k", "paper", "outcome", "merged R(D,D-bar) distinct", "history admissible", "detail",
		},
		Notes: []string{
			"'paper' is the paper's verdict for (Sigma_k, Omega_k): solvable iff k = 1 or k = n-1 (Corollary 13)",
			"impossible rows are Theorem 1 refutations of the Sigma_k candidate under partition histories",
			"k = n-1 runs the Sigma_{n-1} singleton-quorum protocol (unconditionally safe; live in environments whose histories eventually provide the smallest correct process's singleton — see DESIGN.md, Substitutions)",
		},
	}
	// Every (n, k) cell is independent — each builds its own failure
	// pattern, oracles, and engine instance — so the sweep fans out over the
	// SweepWorkers pool with per-cell result slots preserving row order.
	type cell struct{ n, k int }
	var cells []cell
	for n := p.MinN; n <= p.MaxN; n++ {
		for k := 1; k <= n-1; k++ {
			cells = append(cells, cell{n, k})
		}
	}
	rows, err := sweepRows(len(cells), func(i int) ([]string, error) {
		n, k := cells[i].n, cells[i].k
		switch {
		case k == 1:
			run, err := Simulate(algorithms.SigmaOmega{}, DistinctInputs(n), SimOptions{
				Detector: DetectorSpec{Kind: "sigma-omega", K: 1},
			})
			if err != nil {
				return nil, fmt.Errorf("E5: consensus n=%d: %w", n, err)
			}
			d := len(run.DistinctDecisions())
			outcome := "decided (consensus)"
			if d != 1 || len(run.Blocked) > 0 {
				outcome = "FAILED"
			}
			return rowOf(n, k, "solvable", outcome, "-", "-", fmt.Sprintf("%d distinct", d)), nil
		case k == n-1:
			// Sigma_{n-1}-based protocol under an environment whose
			// histories eventually provide the smallest correct
			// process's singleton quorum (admissible; see the
			// SingletonQuorum docs for the safety proof and the
			// liveness condition).
			pattern := fd.NewPattern(n).WithInitiallyDead(ProcessID(n))
			oracle := sched.OracleFunc(func(p sim.ProcessID, tm int, c *sim.Configuration) sim.FDValue {
				correct := pattern.Correct()
				if tm >= 3 && len(correct) > 0 && p == correct[0] {
					return fd.NewTrustSet(p)
				}
				return fd.NewTrustSet(pattern.Alive(tm)...)
			})
			cp := sched.CrashPlan{InitialDead: []sim.ProcessID{sim.ProcessID(n)}}
			s := &sched.Fair{Crash: cp, Oracle: oracle, Stop: sched.AllCorrectDecided(cp)}
			run, err := sim.Execute(algorithms.SingletonQuorum{}, DistinctInputs(n), s, sim.Options{})
			if err != nil {
				return nil, fmt.Errorf("E5: (n-1)-set n=%d: %w", n, err)
			}
			d := len(run.DistinctDecisions())
			outcome := "decided"
			if d > k || len(run.Blocked) > 0 {
				outcome = "FAILED"
			}
			return rowOf(n, k, "solvable", outcome, "-", "-",
				fmt.Sprintf("%d distinct via Sigma_{n-1} singleton-quorum protocol (1 crash)", d)), nil
		default:
			row, err := theorem10Row(orDefault(p.Search), n, k, p.MaxConfigs)
			if err != nil {
				return nil, fmt.Errorf("E5: theorem 10 n=%d k=%d: %w", n, k, err)
			}
			return row, nil
		}
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// theorem10Row executes the full Theorem 10 construction for one (n, k).
func theorem10Row(s *Searcher, n, k, maxConfigs int) ([]string, error) {
	rep, merged, err := s.Theorem10Construction(context.Background(), n, k, maxConfigs)
	if err != nil {
		return nil, err
	}
	outcome := "NOT REFUTED"
	detail := rep.Summary()
	if rep.Refuted {
		outcome = "refuted"
		detail = fmt.Sprintf("%s violation, %d distinct in pasted run", rep.Violation, len(rep.DistinctDecided))
	}
	mergedStr := "-"
	if merged != nil {
		mergedStr = fmt.Sprintf("%d", len(merged.Distinct))
	}
	admissible := "-"
	if rep.Pasted != nil {
		admissible = fmt.Sprintf("%t", pastedHistoryAdmissible(rep, k))
	}
	return []string{
		fmt.Sprintf("%d", n), fmt.Sprintf("%d", k), "impossible", outcome, mergedStr, admissible, detail,
	}, nil
}

// Theorem10Construction runs the Theorem 1 pipeline in the Theorem 10
// setting for the Sigma_k candidate algorithm: D-bar = {p_1..p_{n-k+1}},
// singleton decider groups, partition detector histories for the solo runs
// (Definition 7), an alive-set Sigma restricted to D-bar plus a fixed
// leader pair for the subsystem exploration (the detector Gamma of the
// paper's condition (C) discussion), and Lemma 12's merged run over all k
// partitions. It returns the engine report and the merged-run report. It
// reads the deprecated Search* globals via DefaultSearcher; new code should
// call the Searcher method.
func Theorem10Construction(n, k, maxConfigs int) (*core.Report, *core.MergedGroupsReport, error) {
	return DefaultSearcher().Theorem10Construction(context.Background(), n, k, maxConfigs)
}

// Theorem10Construction runs the Theorem 10 pipeline with this Searcher's
// knobs; see the package-level function for the construction's anatomy.
func (s *Searcher) Theorem10Construction(ctx context.Context, n, k, maxConfigs int) (*core.Report, *core.MergedGroupsReport, error) {
	spec, err := core.Theorem10Partition(n, k)
	if err != nil {
		return nil, nil, err
	}
	all := spec.AllGroups() // D_1..D_{k-1}, D-bar (= the paper's D_k)
	dbar := spec.DBar()

	soloOracle := func(i int, g []sim.ProcessID) sched.Oracle {
		pattern := fd.NewPattern(n).WithInitiallyDead(sim.Complement(n, g)...)
		return fd.PartitionCombinedOracle{
			Sigma: fd.NewPartitionSigmaOracle(all, pattern),
			Omega: fd.OmegaOracle{K: k, Pattern: pattern, GST: 0},
		}
	}

	// Gamma for <D-bar>: quorums are the currently-alive members of D-bar
	// (a valid Sigma history of the restricted model), leaders a fixed
	// k-set intersecting D-bar in two processes (compatible with Omega'_k,
	// cf. the proof of condition (C) in Theorem 10).
	leaders := gammaLeaders(n, k, dbar)
	dbarOracle := sched.OracleFunc(func(p sim.ProcessID, t int, c *sim.Configuration) sim.FDValue {
		var alive []sim.ProcessID
		for _, q := range dbar {
			if c == nil || !c.Crashed(q) {
				alive = append(alive, q)
			}
		}
		return fd.Combined{Quorum: fd.NewTrustSet(alive...), Leaders: leaders}
	})

	// POR is a sound no-op here (the Gamma oracle disables pruning), and the
	// Searcher stamps the full knob set — including Workers and Faults,
	// which the legacy global-reading path silently dropped on this route.
	rep, err := s.CheckImpossibility(ctx, core.Instance{
		Alg:             algorithms.QuorumMin{},
		Inputs:          DistinctInputs(n),
		Spec:            spec,
		SoloOracle:      soloOracle,
		DBarCrashBudget: 1, // Theorem 10 allows up to |D-bar|-1; one suffices
		DBarOracle:      dbarOracle,
		MaxConfigs:      maxConfigs,
	})
	if err != nil {
		return nil, nil, err
	}

	// Lemma 12: the merged run over all k partitions (R(D, D-bar) != {}).
	merged, err := core.BuildMergedGroupsRun(algorithms.QuorumMin{}, DistinctInputs(n), all, func(i int, g []sim.ProcessID) sched.Oracle {
		return soloOracle(i, g)
	}, 0)
	if err != nil {
		return rep, nil, nil // engine result stands; merged run optional
	}
	return rep, merged, nil
}

// gammaLeaders builds the stable leader set of the Gamma detector: a k-set
// intersecting D-bar in exactly two processes (p_s, p_t) padded with the
// singleton-group processes.
func gammaLeaders(n, k int, dbar []sim.ProcessID) fd.Leaders {
	ids := make([]sim.ProcessID, 0, k)
	if len(dbar) > 0 {
		ids = append(ids, dbar[0])
	}
	if len(dbar) > 1 {
		ids = append(ids, dbar[1])
	}
	for p := n; p >= 1 && len(ids) < k; p-- {
		pid := sim.ProcessID(p)
		dup := false
		for _, q := range ids {
			if q == pid {
				dup = true
				break
			}
		}
		if !dup {
			ids = append(ids, pid)
		}
	}
	return fd.NewLeaders(ids...)
}

// pastedHistoryAdmissible machine-checks that the detector history of the
// pasted run satisfies the Sigma_k intersection and liveness properties and
// Omega_k validity — the content of Lemma 9 ("(Sigma_k, Omega_k) is weaker
// than (Sigma'_k, Omega'_k)") and of Lemma 11's claim that pasting yields a
// legal partitioning history.
func pastedHistoryAdmissible(rep *core.Report, k int) bool {
	h := fd.HistoryFromRun(rep.Pasted)
	pattern := fd.PatternFromRun(rep.Pasted)
	if err := fd.CheckSigmaIntersection(h, k); err != nil {
		return false
	}
	if err := fd.CheckSigmaLiveness(h, pattern); err != nil {
		return false
	}
	if err := fd.CheckOmegaValidity(h, k); err != nil {
		return false
	}
	return true
}
