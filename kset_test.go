package kset

import (
	"strings"
	"testing"
)

func TestDistinctInputs(t *testing.T) {
	in := DistinctInputs(5)
	if len(in) != 5 {
		t.Fatalf("len = %d", len(in))
	}
	seen := map[Value]bool{}
	for _, v := range in {
		if seen[v] {
			t.Fatalf("duplicate input %d", v)
		}
		seen[v] = true
	}
}

func TestSimulateBasic(t *testing.T) {
	run, err := Simulate(NewMinWait(1), DistinctInputs(4), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Blocked) != 0 {
		t.Fatalf("blocked: %v", run.Blocked)
	}
	if d := len(run.DistinctDecisions()); d > 2 {
		t.Fatalf("distinct = %d", d)
	}
}

func TestSimulateWithPartition(t *testing.T) {
	run, err := Simulate(NewMinWait(3), DistinctInputs(6), SimOptions{
		Partition: [][]ProcessID{{1, 2, 3}, {4, 5, 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := len(run.DistinctDecisions()); d != 2 {
		t.Fatalf("distinct = %d, want 2 (one per group)", d)
	}
}

func TestSimulateWithDetector(t *testing.T) {
	run, err := Simulate(NewSigmaOmega(), DistinctInputs(4), SimOptions{
		Detector: DetectorSpec{Kind: "sigma-omega", K: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := len(run.DistinctDecisions()); d != 1 {
		t.Fatalf("distinct = %d, want consensus", d)
	}
}

func TestSimulateRejectsBadDetector(t *testing.T) {
	if _, err := Simulate(NewMinWait(1), DistinctInputs(3), SimOptions{
		Detector: DetectorSpec{Kind: "nonsense"},
	}); err == nil {
		t.Fatal("unknown detector accepted")
	}
	if _, err := Simulate(NewMinWait(1), DistinctInputs(3), SimOptions{
		Detector: DetectorSpec{Kind: "partition"},
	}); err == nil {
		t.Fatal("partition detector without partition accepted")
	}
}

func TestFindConsensusFailureFacade(t *testing.T) {
	w, found, err := FindConsensusFailure(NewMinWait(1), DistinctInputs(3), []ProcessID{1, 2, 3}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("MinWait{F:1} disagreement not found in 3-process system")
	}
	if w.Kind != "disagreement" {
		t.Fatalf("kind = %s", w.Kind)
	}
}

func TestTheorem10ConstructionSmall(t *testing.T) {
	rep, merged, err := Theorem10Construction(5, 2, 80000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Refuted {
		t.Fatalf("not refuted: %s", rep.Summary())
	}
	if merged == nil || len(merged.Distinct) != 2 {
		t.Fatalf("merged run: %+v", merged)
	}
	if !pastedHistoryAdmissible(rep, 2) {
		t.Fatal("pasted history not admissible as (Sigma_2, Omega_2)")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Title:   "test",
		Columns: []string{"a", "bb"},
		Notes:   []string{"hello"},
	}
	tab.AddRow(1, "x")
	tab.AddRow("longer", 2)
	s := tab.String()
	for _, want := range []string{"== T: test ==", "a", "bb", "longer", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 15 {
		t.Fatalf("suite has %d experiments, want 15", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestCheapExperimentsProduceConsistentTables smoke-runs the fast
// experiments and asserts their invariant columns.
func TestCheapExperimentsProduceConsistentTables(t *testing.T) {
	t.Run("E3", func(t *testing.T) {
		tab, err := ExperimentBorderImpossibility()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[5] != "true" { // indistinguishable
				t.Fatalf("E3 row not indistinguishable: %v", row)
			}
			if row[6] != "true" { // violates k-agreement
				t.Fatalf("E3 row does not violate: %v", row)
			}
		}
	})
	t.Run("E6", func(t *testing.T) {
		tab, err := ExperimentBivalence()
		if err != nil {
			t.Fatal(err)
		}
		bivalent := 0
		for _, row := range tab.Rows {
			if row[2] == "bivalent" {
				bivalent++
			}
		}
		if bivalent == 0 {
			t.Fatal("E6 found no bivalent initial configuration")
		}
	})
	t.Run("E7", func(t *testing.T) {
		tab, err := ExperimentPartitionHistoryValidity()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			for col := 3; col <= 7; col++ {
				if row[col] != "true" {
					t.Fatalf("E7 check failed: %v", row)
				}
			}
		}
	})
	t.Run("E8", func(t *testing.T) {
		tab, err := ExperimentTIndependence()
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Fatal("E8 empty")
		}
	})
	t.Run("E10", func(t *testing.T) {
		tab, err := ExperimentRuntimeAblation()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[len(row)-1] != "true" {
				t.Fatalf("E10 ablation mismatch: %v", row)
			}
		}
	})
	t.Run("E12", func(t *testing.T) {
		tab, err := ExperimentSynchronyLadder()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[len(row)-1] != "true" {
				t.Fatalf("E12 outcome outside claim: %v", row)
			}
			// Partitioned rungs must show the split for every protocol —
			// process synchrony does not prevent it (Theorem 2).
			if row[2] == "async+part" || row[2] == "lockstep+part" {
				if row[3] == "1" {
					t.Fatalf("partitioned rung did not split: %v", row)
				}
			}
		}
	})
	t.Run("E11", func(t *testing.T) {
		tab, err := ExperimentRoundModel()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[len(row)-1] != "true" {
				t.Fatalf("E11 round-model row failed: %v", row)
			}
			// The kernel predicate must separate the assignments.
			switch row[3] {
			case "complete":
				if row[4] != "true" {
					t.Fatalf("complete assignment lost its kernel: %v", row)
				}
			case "partitioned":
				if row[4] != "false" {
					t.Fatalf("partitioned assignment should have empty kernel: %v", row)
				}
			}
		}
	})
}

// TestHeavyExperiments runs the engine-backed sweeps; skipped with -short.
func TestHeavyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment sweeps skipped in -short mode")
	}
	t.Run("E1", func(t *testing.T) {
		tab, err := ExperimentTheorem2Border(E1Params{MinN: 4, MaxN: 5, MaxConfigs: 60000})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[3] == "impossible" && row[4] != "refuted" {
				t.Fatalf("E1 impossible row not refuted: %v", row)
			}
			if row[3] == "solvable" && row[4] != "decided" {
				t.Fatalf("E1 solvable row failed: %v", row)
			}
		}
	})
	t.Run("E2", func(t *testing.T) {
		tab, err := ExperimentInitialCrashPossibility(E2Params{MinN: 3, MaxN: 6, TrialsPerPoint: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[len(row)-1] != "true" {
				t.Fatalf("E2 row violates Theorem 8: %v", row)
			}
		}
	})
	t.Run("E5", func(t *testing.T) {
		tab, err := ExperimentFailureDetectorBorder(E5Params{MinN: 5, MaxN: 5, MaxConfigs: 80000})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			switch row[2] {
			case "impossible":
				if row[3] != "refuted" {
					t.Fatalf("E5 impossible row not refuted: %v", row)
				}
			case "solvable":
				if !strings.HasPrefix(row[3], "decided") {
					t.Fatalf("E5 solvable row failed: %v", row)
				}
			}
		}
	})
	t.Run("E9", func(t *testing.T) {
		tab, err := ExperimentCandidateVetting()
		if err != nil {
			t.Fatal(err)
		}
		wantVerdicts := map[string]string{
			"decideown":       "flawed",
			"firstheard":      "flawed",
			"minwait(f=3)":    "flawed",
			"minwait(f=1)":    "survives",
			"roundflood(f=2)": "flawed",
		}
		for _, row := range tab.Rows {
			if want, ok := wantVerdicts[row[0]]; ok && row[4] != want {
				t.Fatalf("E9 verdict for %s = %s, want %s", row[0], row[4], want)
			}
		}
	})
}
