package kset

// This file is the globals-free search API of the facade: a first-class
// Options value plus an immutable Searcher built from it, threaded with
// context.Context cancellation down into internal/explore. It replaces the
// mutable Search* package globals of kset.go for all new code — concurrent
// searches configured through globals are a data race by construction,
// which is exactly what a long-running job server (cmd/ksetd) cannot have.
// The globals remain as deprecated shims feeding DefaultSearcher, so
// existing callers and tests keep their behaviour bit for bit.

import (
	"context"

	"kset/internal/core"
	"kset/internal/explore"
	"kset/internal/sim"
)

// Options bundles the facade's search knobs in CLI spelling — one immutable
// value instead of the six deprecated Search* globals. The zero value is
// the default configuration (GOMAXPROCS workers, no reductions, in-memory
// arena store, no checkpointing, crash-only faults) and is always valid.
type Options struct {
	// Workers caps the goroutines expanding the frontier of each
	// breadth-first condition-(C) search (0 = GOMAXPROCS, 1 = the exact
	// sequential legacy search). Results are bit-identical at every worker
	// count; see the SearchWorkers global for the full discussion.
	Workers int
	// Symmetry enables orbit-canonical revisit detection (SearchSymmetry).
	Symmetry bool
	// POR enables commutativity-based partial-order reduction (SearchPOR).
	POR bool
	// Store selects the memory regime: "" or "inmem", "frontier", or
	// "spill" (SearchStore).
	Store string
	// Checkpoint names the directory truncated bounded searches pause into,
	// empty for none (SearchCheckpoint). Requires a bounded Store.
	Checkpoint string
	// Faults selects the condition-(C) fault adversary in
	// explore.ParseFaults spelling: "" or "crash", or
	// "model[:budget[:maxfaulty]]" (SearchFaults).
	Faults string
	// Packed selects the configuration engine of the condition-(C)
	// searches: "" or "off" for the pointer engine, "on" (or "auto") for
	// the packed struct-of-arrays engine, which clones configurations with
	// flat memcpys instead of per-process allocations and falls back
	// silently where an algorithm/system pair has no packed encoding (see
	// explore.Options.Packed). Like Workers and Store it never changes a
	// verdict, witness, or visited set, and it is excluded from digests —
	// cached verdicts and checkpoints interoperate across both engines.
	// There is no corresponding legacy global: the knob postdates the
	// migration to Options.
	Packed string
}

// Validate reports whether the options' string spellings parse. It is the
// value-type replacement for ApplySearchConfig's validation half.
func (o Options) Validate() error {
	if _, err := explore.ParseStore(o.Store); err != nil {
		return err
	}
	if _, err := explore.ParseFaults(o.Faults); err != nil {
		return err
	}
	if _, err := explore.ParsePacked(o.Packed); err != nil {
		return err
	}
	return nil
}

// Searcher is an immutable, goroutine-safe handle on a validated Options
// value: every condition-(C) search it spawns uses exactly these knobs, so
// concurrent searches with different configurations are isolated — the
// property the mutable Search* globals could not provide. Construct with
// NewSearcher; DefaultSearcher derives one from the deprecated globals.
type Searcher struct {
	opts   Options
	store  explore.Store
	faults explore.FaultAdversary
	packed bool
}

// NewSearcher validates o and returns a Searcher bound to it.
func NewSearcher(o Options) (*Searcher, error) {
	store, err := explore.ParseStore(o.Store)
	if err != nil {
		return nil, err
	}
	faults, err := explore.ParseFaults(o.Faults)
	if err != nil {
		return nil, err
	}
	packed, err := explore.ParsePacked(o.Packed)
	if err != nil {
		return nil, err
	}
	return &Searcher{opts: o, store: store, faults: faults, packed: packed}, nil
}

// DefaultSearcher returns a Searcher snapshotting the current values of the
// deprecated Search* globals — the bridge that keeps global-configured
// callers (and the package-level helpers) working during the migration. It
// panics on unparsable globals, matching the legacy helpers' semantics: the
// globals are set programmatically or by already-validated CLI flags, so an
// invalid value is a programming error. New code should construct Options
// directly and use NewSearcher.
func DefaultSearcher() *Searcher {
	s, err := NewSearcher(Options{
		Workers:    SearchWorkers,
		Symmetry:   SearchSymmetry,
		POR:        SearchPOR,
		Store:      SearchStore,
		Checkpoint: SearchCheckpoint,
		Faults:     SearchFaults,
	})
	if err != nil {
		panic("kset: invalid Search* globals: " + err.Error())
	}
	return s
}

// Options returns the validated options the Searcher was built from.
func (s *Searcher) Options() Options { return s.opts }

// orDefault resolves a possibly-nil Searcher to the zero-options default:
// the convention of the experiment parameter structs, whose zero value now
// means "default knobs" rather than "whatever the deprecated Search*
// globals currently hold". Callers who want global-driven configuration
// must pass DefaultSearcher() explicitly — nothing in this repository does
// anymore (the Search*-reference lint step in CI keeps it that way).
func orDefault(s *Searcher) *Searcher {
	if s != nil {
		return s
	}
	return &Searcher{} // the zero Options are always valid
}

// instance stamps the Searcher's knobs and the context over inst: the
// single point mapping the facade's search configuration onto the engine's
// Instance fields, shared by CheckImpossibility and InstanceDigest so a
// verdict's content address always reflects the search that produced it.
// Per-instance fields that are not search knobs (strategy, budgets, oracles,
// progress callback) pass through untouched.
func (s *Searcher) instance(ctx context.Context, inst ImpossibilityInstance) ImpossibilityInstance {
	inst.SearchWorkers = s.opts.Workers
	inst.Symmetry = s.opts.Symmetry
	inst.POR = s.opts.POR
	inst.SearchStore = s.opts.Store
	inst.Checkpoint = s.opts.Checkpoint
	inst.Faults = s.opts.Faults
	inst.SearchPacked = s.opts.Packed
	inst.Ctx = ctx
	return inst
}

// CheckImpossibility runs the Theorem 1 pipeline with this Searcher's
// knobs stamped over the instance's search fields and ctx threaded into the
// condition-(C) exploration. Cancellation is cooperative: a cancelled
// search stops at its next poll point and the report comes back
// inconclusive with Report.CondCStats.Cancelled set (with a Checkpoint
// configured, the paused state is persisted for a later resume); no error
// is returned for cancellation.
func (s *Searcher) CheckImpossibility(ctx context.Context, inst ImpossibilityInstance) (*ImpossibilityReport, error) {
	return core.CheckImpossibility(s.instance(ctx, inst))
}

// InstanceDigest returns the content address of the instance's verdict
// under this Searcher's knobs: the cache key of the verdict store in
// internal/service. Two instances share a digest exactly when
// CheckImpossibility is guaranteed to produce bit-identical verdicts for
// them — Workers and Store are excluded, reductions, faults, budgets, and
// strategy are included. See core.InstanceDigest.
func (s *Searcher) InstanceDigest(inst ImpossibilityInstance) (uint64, error) {
	return core.InstanceDigest(s.instance(context.Background(), inst))
}

// SearchRequest parameterizes Searcher.FindConsensusFailure: the standalone
// condition-(C) search over an explicit live set.
type SearchRequest struct {
	// Alg is the algorithm under test; the search restricts it to Live.
	Alg Algorithm
	// Inputs is the full-system proposal vector (one value per process).
	Inputs []Value
	// Live is the subsystem searched; processes outside it crash initially.
	Live []ProcessID
	// CrashBudget bounds the adversary's crashes inside the subsystem.
	CrashBudget int
	// MaxConfigs bounds the exploration (0 = explore package default).
	MaxConfigs int
	// OnProgress, when non-nil, receives periodic (visited, level) progress
	// from the search; level is -1 from engines that do not track depth.
	OnProgress func(visited, level int)
	// OnSnapshotError, when non-nil, is notified once if the search's
	// best-effort level-boundary checkpoint snapshots start failing: the
	// verdict is unaffected but crash durability degraded (see
	// explore.Options.OnSnapshotError). Only meaningful with a Checkpoint
	// configured on the Searcher.
	OnSnapshotError func(error)
}

// explorer builds the condition-(C) explorer FindConsensusFailure and
// SearchDigest share, so the digest always addresses exactly the search
// that would run.
func (s *Searcher) explorer(ctx context.Context, req SearchRequest) *explore.Explorer {
	return explore.New(sim.Restrict(req.Alg, req.Live), req.Inputs, explore.Options{
		Live:            req.Live,
		MaxCrashes:      req.CrashBudget,
		MaxConfigs:      req.MaxConfigs,
		Workers:         s.opts.Workers,
		Symmetry:        s.opts.Symmetry,
		POR:             s.opts.POR,
		Faults:          s.faults,
		Store:           s.store,
		Packed:          s.packed,
		Checkpoint:      s.opts.Checkpoint,
		Context:         ctx,
		OnProgress:      req.OnProgress,
		OnSnapshotError: req.OnSnapshotError,
	})
}

// FindConsensusFailure searches the subsystem of live processes for a
// disagreement or blocking witness of the algorithm under adversarial
// scheduling — the condition (C) helper on the Searcher, cancellable via
// ctx. A cancelled search returns the usual (witness, false, nil) shape
// with witness.Stats.Cancelled set.
func (s *Searcher) FindConsensusFailure(ctx context.Context, req SearchRequest) (*explore.Witness, bool, error) {
	ex := s.explorer(ctx, req)
	w, found, err := ex.FindDisagreement()
	if err != nil || found {
		return w, found, err
	}
	return ex.FindBlocking()
}

// SearchDigest returns the content address of FindConsensusFailure's
// verdict for req under this Searcher's knobs: a fingerprint of the
// algorithm, inputs, live set, crash budget, reductions, fault model, and
// MaxConfigs. Workers and Store are excluded — results are bit-identical
// across them (the verdict-cache invariant shared with InstanceDigest).
func (s *Searcher) SearchDigest(req SearchRequest) uint64 {
	ex := s.explorer(context.Background(), req)
	h := sim.HashSeed()
	h = sim.HashUint(h, ex.Digest("disagreement"))
	h = sim.HashUint(h, ex.Digest("blocking"))
	h = sim.HashUint(h, uint64(req.MaxConfigs))
	return sim.HashMix(h)
}
