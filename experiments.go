package kset

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result: the reproduction analogue of a
// paper table. Every experiment runner returns one.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying every cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// Experiments returns the full suite E1-E12 with default parameters, in
// order. cmd/experiments prints them all; the root benchmarks time them.
// Sweep-shaped experiments (E1, E5, E12) evaluate their independent cells on
// a worker pool sized by SweepWorkers while emitting rows in deterministic
// sequential order. The search-driven experiments run with default search
// options; ExperimentsWith threads an explicit Searcher instead.
func Experiments() []Experiment {
	return ExperimentsWith(nil)
}

// ExperimentsWith is Experiments with an explicit search configuration for
// the search-driven experiments (E1, E5, E6, E13, E14, E15); nil means
// default options (never the deprecated Search* globals — pass
// DefaultSearcher() explicitly to honour those). Experiments that run no
// condition-(C) search are unaffected by the Searcher.
func ExperimentsWith(s *Searcher) []Experiment {
	return []Experiment{
		{"E1", "Theorem 2: impossibility border k <= (n-1)/(n-f)", func() (*Table, error) {
			p := DefaultE1Params()
			p.Search = s
			return ExperimentTheorem2Border(p)
		}},
		{"E2", "Theorem 8: possibility region kn > (k+1)f (initial crashes)", func() (*Table, error) { return ExperimentInitialCrashPossibility(DefaultE2Params()) }},
		{"E3", "Theorem 8: border impossibility kn = (k+1)f", func() (*Table, error) { return ExperimentBorderImpossibility() }},
		{"E4", "Lemmas 6/7: source components of min-in-degree digraphs", func() (*Table, error) { return ExperimentSourceComponents(DefaultE4Params()) }},
		{"E5", "Theorem 10 / Corollary 13: the (Sigma_k, Omega_k) border", func() (*Table, error) {
			p := DefaultE5Params()
			p.Search = s
			return ExperimentFailureDetectorBorder(p)
		}},
		{"E6", "Condition (C): bivalence in restricted subsystems", func() (*Table, error) { return ExperimentBivalenceWith(s) }},
		{"E7", "Lemma 9: partition histories satisfy (Sigma_k, Omega_k)", func() (*Table, error) { return ExperimentPartitionHistoryValidity() }},
		{"E8", "Section IV: T-independence of the protocols", func() (*Table, error) { return ExperimentTIndependence() }},
		{"E9", "Section III remark: Theorem 1 as a vetting tool", func() (*Table, error) { return ExperimentCandidateVetting() }},
		{"E10", "Ablation: deterministic kernel vs goroutine runtime", func() (*Table, error) { return ExperimentRuntimeAblation() }},
		{"E11", "Discussion outlook: partitioning in the Heard-Of round model", func() (*Table, error) { return ExperimentRoundModel() }},
		{"E12", "Synchrony ladder: protocols across the Section II model dimensions", func() (*Table, error) { return ExperimentSynchronyLadder() }},
		{"E13", "Memory-bounded exploration: uniform Theorem 2 beyond the in-memory arena", func() (*Table, error) {
			p := DefaultE13Params()
			p.Search = s
			return ExperimentBoundedExploration(p)
		}},
		{"E14", "Fault models: omission and value faults across the search substrate", func() (*Table, error) {
			p := DefaultE14Params()
			p.Search = s
			return ExperimentFaultModels(p)
		}},
		{"E15", "Sharded exploration: bit-identical verdicts at every shard count", func() (*Table, error) {
			p := DefaultE15Params()
			p.Search = s
			return ExperimentShardedExploration(p)
		}},
	}
}
