package kset

import (
	"context"
	"testing"

	"kset/internal/algorithms"
	"kset/internal/core"
)

// This file holds one benchmark per experiment of EXPERIMENTS.md (the
// reproduction analogue of "one bench per paper table/figure"), plus
// benchmarks for the central engine operations. Micro-benchmarks of the
// substrates live next to their packages (internal/sim, internal/graph,
// internal/fd, internal/explore).

// BenchmarkE1Theorem2Border regenerates the Theorem 2 border sweep.
func BenchmarkE1Theorem2Border(b *testing.B) {
	p := E1Params{MinN: 4, MaxN: 5, MaxConfigs: 60000}
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentTheorem2Border(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2InitialCrashPossibility regenerates the Theorem 8 possibility
// sweep.
func BenchmarkE2InitialCrashPossibility(b *testing.B) {
	p := DefaultE2Params()
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentInitialCrashPossibility(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3BorderImpossibility regenerates the kn = (k+1)f border table.
func BenchmarkE3BorderImpossibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentBorderImpossibility(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4SourceComponents regenerates the Lemma 6/7 table.
func BenchmarkE4SourceComponents(b *testing.B) {
	p := E4Params{Sizes: []int{16, 64}, Trials: 5, Seed: 4}
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentSourceComponents(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5FailureDetectorBorder regenerates the Theorem 10 / Corollary
// 13 table.
func BenchmarkE5FailureDetectorBorder(b *testing.B) {
	p := E5Params{MinN: 5, MaxN: 5, MaxConfigs: 80000}
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentFailureDetectorBorder(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6BivalenceSearch regenerates the valence table.
func BenchmarkE6BivalenceSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentBivalence(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7PartitionHistoryValidity regenerates the Lemma 9 table.
func BenchmarkE7PartitionHistoryValidity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentPartitionHistoryValidity(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8TIndependence regenerates the T-independence table.
func BenchmarkE8TIndependence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentTIndependence(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9CandidateVetting regenerates the vetting table.
func BenchmarkE9CandidateVetting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentCandidateVetting(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10RuntimeAblation regenerates the kernel-vs-goroutine table.
func BenchmarkE10RuntimeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentRuntimeAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11RoundModel regenerates the Heard-Of round-model table.
func BenchmarkE11RoundModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentRoundModel(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12SynchronyLadder regenerates the model-dimension sweep.
func BenchmarkE12SynchronyLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExperimentSynchronyLadder(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine-centric ablation benchmarks ---

// BenchmarkEngineTheorem2MinWait times one full Theorem 1 pipeline run in
// the Theorem 2 setting (solo runs + DFS subsystem search + pasting +
// indistinguishability checks).
func BenchmarkEngineTheorem2MinWait(b *testing.B) {
	spec, err := core.Theorem2Partition(5, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	inputs := DistinctInputs(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.CheckImpossibility(core.Instance{
			Alg:             algorithms.MinWait{F: 3},
			Inputs:          inputs,
			Spec:            spec,
			DBarCrashBudget: 1,
			MaxConfigs:      60000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Refuted {
			b.Fatal("not refuted")
		}
	}
}

// BenchmarkEngineTheorem10QuorumMin times the full Theorem 10 construction
// with partition failure detectors.
func BenchmarkEngineTheorem10QuorumMin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, _, err := Theorem10Construction(5, 2, 80000)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Refuted {
			b.Fatal("not refuted")
		}
	}
}

// BenchmarkSymmetryConsensusFailure times the facade-level condition-(C)
// search (Searcher.FindConsensusFailure: exhaustive disagreement + blocking
// search) on the uniform-input Theorem 2 instance with Options.Symmetry off
// and on — the EngineTheorem2MinWait-class workload where orbit reduction
// pays off.
func BenchmarkSymmetryConsensusFailure(b *testing.B) {
	inputs := []Value{0, 0, 0, 0}
	live := []ProcessID{1, 2, 3, 4}
	run := func(b *testing.B, symmetry bool) {
		s, err := NewSearcher(Options{Symmetry: symmetry})
		if err != nil {
			b.Fatal(err)
		}
		req := SearchRequest{Alg: NewMinWait(1), Inputs: inputs, Live: live, CrashBudget: 1, MaxConfigs: 200000}
		for i := 0; i < b.N; i++ {
			_, found, err := s.FindConsensusFailure(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if found {
				b.Fatal("uniform inputs cannot produce a consensus failure for MinWait{F:1}")
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkSimulateFLPKSet times a plain possibility-side run (the protocol
// a downstream user would call).
func BenchmarkSimulateFLPKSet(b *testing.B) {
	inputs := DistinctInputs(8)
	for i := 0; i < b.N; i++ {
		run, err := Simulate(NewFLPKSet(3), inputs, SimOptions{InitialDead: []ProcessID{2, 7}})
		if err != nil {
			b.Fatal(err)
		}
		if len(run.Blocked) != 0 {
			b.Fatal("blocked")
		}
	}
}

// BenchmarkMergedBorderRun times the Lemma 12-style pasting of solo runs.
func BenchmarkMergedBorderRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := MergedBorderRun(6, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Distinct) != 3 {
			b.Fatal("unexpected decision count")
		}
	}
}
