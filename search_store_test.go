package kset

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSearchStoreFacadeParity proves the SearchStore knob is purely a
// memory-regime control on the public facade: the condition-(C) search
// finds the identical witness with identical stats under every store mode,
// at sequential and parallel worker counts.
func TestSearchStoreFacadeParity(t *testing.T) {
	defer func(s string, w int) { SearchStore, SearchWorkers = s, w }(SearchStore, SearchWorkers)

	SearchStore = ""
	SearchWorkers = 1
	refW, refFound, err := FindConsensusFailure(NewMinWait(1), DistinctInputs(3), []ProcessID{1, 2, 3}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !refFound {
		t.Fatal("MinWait{F:1} disagreement not found in 3-process system")
	}
	for _, store := range []string{"inmem", "frontier", "spill"} {
		for _, workers := range []int{1, 4} {
			SearchStore = store
			SearchWorkers = workers
			w, found, err := FindConsensusFailure(NewMinWait(1), DistinctInputs(3), []ProcessID{1, 2, 3}, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if found != refFound || w.Kind != refW.Kind || w.Detail != refW.Detail || w.Stats != refW.Stats {
				t.Fatalf("store=%s workers=%d diverged: found=%t %s %q %+v vs %s %q %+v",
					store, workers, found, w.Kind, w.Detail, w.Stats, refW.Kind, refW.Detail, refW.Stats)
			}
		}
	}
}

// TestSearchStoreBivalenceTable proves the E6 valence table renders
// identically under the bounded stores: valence bookkeeping is
// frontier-only by construction, so the store knob must change nothing.
func TestSearchStoreBivalenceTable(t *testing.T) {
	ref, err := ExperimentBivalenceWith(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, store := range []string{"frontier", "spill"} {
		s, err := NewSearcher(Options{Store: store})
		if err != nil {
			t.Fatal(err)
		}
		tab, err := ExperimentBivalenceWith(s)
		if err != nil {
			t.Fatal(err)
		}
		if tab.String() != ref.String() {
			t.Fatalf("E6 table changed under Store=%s:\n%s\nvs default:\n%s", store, tab.String(), ref.String())
		}
	}
}

// TestSearchCheckpointFacade proves the checkpoint flow end-to-end through
// the facade: a budget-truncated bounded search leaves a checkpoint file in
// SearchCheckpoint, and rerunning the identical search with a full budget
// resumes from it and lands on the uninterrupted result.
func TestSearchCheckpointFacade(t *testing.T) {
	defer func(s, c string) { SearchStore, SearchCheckpoint = s, c }(SearchStore, SearchCheckpoint)

	alg, inputs, live := NewMinWait(1), []Value{0, 0, 0}, []ProcessID{1, 2, 3}

	SearchStore = "frontier"
	SearchCheckpoint = ""
	refW, refFound, err := FindConsensusFailure(alg, inputs, live, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if refFound || refW.Stats.Truncated {
		t.Fatalf("reference: found=%t stats=%+v", refFound, refW.Stats)
	}

	dir := t.TempDir()
	SearchCheckpoint = dir
	if _, _, err := FindConsensusFailure(alg, inputs, live, 1, refW.Stats.Visited/3); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint files written to %s (err=%v)", dir, err)
	}
	w, found, err := FindConsensusFailure(alg, inputs, live, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if found != refFound || w.Stats != refW.Stats {
		t.Fatalf("resumed run diverged: found=%t stats=%+v vs %+v", found, w.Stats, refW.Stats)
	}
	// Completion must remove the consumed checkpoints.
	left, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(left) != 0 {
		t.Fatalf("checkpoints left after completed searches: %v", left)
	}
}
