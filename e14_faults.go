package kset

import (
	"context"
	"fmt"

	"kset/internal/algorithms"
)

// E14Params parameterizes the fault-model experiment: a small MinWait
// subsystem searched directly under each fault model, and a Theorem 2
// engine instance re-verified with omission- and value-faulty adversaries.
type E14Params struct {
	// N and F shape the subsystem rows: MinWait(F) with all N processes
	// live, distinct proposals, crash budget 1.
	N, F int
	// MaxConfigs bounds the subsystem searches.
	MaxConfigs int
	// EngineN, EngineF, EngineK select the Theorem 2 instance of the engine
	// rows (must lie in the impossible regime k <= (n-1)/(n-f)).
	EngineN, EngineF, EngineK int
	// EngineMaxConfigs bounds the engine rows' condition-(C) searches.
	EngineMaxConfigs int
	// Search supplies the base search configuration; each row derives a
	// per-fault Searcher from it (the Faults knob is the sweep's subject).
	// Nil means default options.
	Search *Searcher
}

// DefaultE14Params returns the instance used by cmd/experiments: the E6
// subsystem shape (MinWait(1), n = 3) and the smallest Theorem 2 engine
// cell (n = 4, f = 3, k = 2).
func DefaultE14Params() E14Params {
	return E14Params{
		N: 3, F: 1, MaxConfigs: 200000,
		EngineN: 4, EngineF: 3, EngineK: 2, EngineMaxConfigs: 60000,
	}
}

// faultSweep is the fault-model column of both E14 row families: the
// crash-only baseline first — its rows must match the pre-fault-layer
// engine bit for bit (the differential tests in internal/explore pin this;
// here the visited counts land in the golden table) — then each non-crash
// model with a budget of one fault event on one process, the smallest
// adversary strengthening the substrate expresses.
var faultSweep = []string{"", "send-omission:1:1", "receive-omission:1:1", "byzantine:1:1"}

// ExperimentFaultModels (E14) exercises the pluggable fault-model substrate
// end to end. The subsystem rows search MinWait's restricted system for
// consensus failures under each fault model: the non-crash adversaries
// branch on omission/corruption choices, so their state spaces strictly
// contain the crash-only one (the visited counts quantify the growth) while
// every witness remains a concrete replayable run. The engine rows re-run a
// Theorem 2 impossibility instance with the same adversaries in <D-bar>:
// the verdict must stay refuted — extra adversary power cannot rescue an
// impossible instance — and the pasted run re-executes any fault steps of
// the witness, so conditions (B)/(D) machine-check the paper's remark that
// the partition argument survives in omission-faulty models.
func ExperimentFaultModels(p E14Params) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Fault models: omission and value faults across the search substrate",
		Columns: []string{
			"family", "faults", "instance", "outcome", "visited", "detail",
		},
		Notes: []string{
			"faults spelling model:budget:maxfaulty (crash = the legacy crash-only adversary);",
			"subsystem rows: direct condition-(C) search of MinWait(f) with all processes live, crash budget 1;",
			"engine rows: full Theorem 2 pipeline with the fault model armed inside <D-bar>;",
			"crash rows are bit-identical to the pre-fault-layer engine (differential-tested), non-crash",
			"rows add adversary branching, which grows the visited space and must never flip a refutation",
		},
	}

	// Each row derives a per-fault Searcher from the base options instead of
	// mutating any shared state: fault configurations stay isolated per
	// row, so concurrent experiment runs cannot observe each other.
	base := orDefault(p.Search).Options()
	perFault := func(faults string) (*Searcher, error) {
		o := base
		o.Faults = faults
		return NewSearcher(o)
	}

	// --- Subsystem rows: the fault models against MinWait directly. ---
	inst := fmt.Sprintf("minwait(%d) n=%d budget=1", p.F, p.N)
	live := make([]ProcessID, p.N)
	for i := range live {
		live[i] = ProcessID(i + 1)
	}
	for _, faults := range faultSweep {
		fs, err := perFault(faults)
		if err != nil {
			return nil, fmt.Errorf("E14: faults=%q: %w", faults, err)
		}
		w, found, err := fs.FindConsensusFailure(context.Background(), SearchRequest{
			Alg:         algorithms.MinWait{F: p.F},
			Inputs:      DistinctInputs(p.N),
			Live:        live,
			CrashBudget: 1,
			MaxConfigs:  p.MaxConfigs,
		})
		if err != nil {
			return nil, fmt.Errorf("E14: subsystem search (faults=%q): %w", faults, err)
		}
		outcome, detail := "no witness", "-"
		if found {
			outcome = w.Kind
			detail = w.Detail
		} else if w.Stats.Truncated {
			outcome = "truncated"
		}
		t.AddRow("subsystem", faultLabel(faults), inst, outcome, w.Stats.Visited, detail)
	}

	// --- Engine rows: Theorem 2 under fault-augmented adversaries. ---
	inst = fmt.Sprintf("theorem2 n=%d f=%d k=%d", p.EngineN, p.EngineF, p.EngineK)
	for _, faults := range faultSweep {
		fs, err := perFault(faults)
		if err != nil {
			return nil, fmt.Errorf("E14: faults=%q: %w", faults, err)
		}
		rep, err := fs.VerifyTheorem2Row(context.Background(), p.EngineN, p.EngineF, p.EngineK, p.EngineMaxConfigs)
		if err != nil {
			return nil, fmt.Errorf("E14: engine row (faults=%q): %w", faults, err)
		}
		if !rep.Refuted {
			return nil, fmt.Errorf("E14: fault model %q un-refuted an impossible instance: %s", faults, rep.Summary())
		}
		visited := 0
		if rep.DBarWitness != nil {
			visited = rep.DBarWitness.Stats.Visited
		}
		detail := fmt.Sprintf("%s violation, %d distinct decisions in pasted run", rep.Violation, len(rep.DistinctDecided))
		t.AddRow("engine", faultLabel(faults), inst, "refuted", visited, detail)
	}
	return t, nil
}

// faultLabel renders the golden-table spelling of an Options.Faults value.
func faultLabel(faults string) string {
	if faults == "" {
		return "crash"
	}
	return faults
}
