package kset

import (
	"context"
	"fmt"
	"sync"

	"kset/internal/explore"
)

// Sharded condition-(C) search: the FindConsensusFailure pipeline
// partitioned across N cooperating explorers by fingerprint ownership
// (explore.ShardOwner). The Searcher exposes the three roles:
//
//   - FindConsensusFailureSharded runs everything in-process (one
//     coordinator plus N worker goroutines over an explore.LocalShardHub):
//     the reference implementation the differential tests and experiment
//     E15 compare against the plain search, and a drop-in way to shard a
//     search without any process plumbing.
//   - ShardCoordinate runs only the coordinator half against a caller-
//     supplied hub, and ShardWorkerRun only one worker shard against a
//     caller-supplied exchange handle — the split internal/service builds
//     the multi-process `-shards N` mode from, with workers in separate
//     OS processes talking to the coordinator's hub over localhost HTTP.
//
// Verdicts, stats, and witnesses are bit-identical to the single-process
// FindConsensusFailure at any shard count; see internal/explore/shard.go
// for the protocol and the argument.

// shardable rejects Searcher configurations the sharded engine does not
// support (checkpoint pause/resume of a distributed search is future work).
func (s *Searcher) shardable() error {
	if s.opts.Checkpoint != "" {
		return fmt.Errorf("kset: sharded search does not support Options.Checkpoint")
	}
	return nil
}

// ShardCoordinate runs the coordinator half of a sharded consensus-failure
// search: the disagreement phase, then — exactly as FindConsensusFailure —
// the blocking phase even when disagreement only truncated, returning the
// blocking result. The hub's workers must run ShardWorkerRun for the same
// request under an identically configured Searcher. The hub is finished
// (or failed) before returning, so workers always terminate.
func (s *Searcher) ShardCoordinate(ctx context.Context, req SearchRequest, hub explore.ShardHub) (*explore.Witness, bool, error) {
	if err := s.shardable(); err != nil {
		hub.Fail(err)
		return nil, false, err
	}
	ex := s.explorer(ctx, req)
	defer hub.Finish()
	w, found, err := ex.ShardSearch("disagreement", hub)
	if err != nil {
		hub.Fail(err)
		return nil, false, err
	}
	if found {
		return w, true, nil
	}
	w, found, err = ex.ShardSearch("blocking", hub)
	if err != nil {
		hub.Fail(err)
		return nil, false, err
	}
	return w, found, nil
}

// ShardWorkerRun runs worker shard `shard` of `shards` for a sharded
// consensus-failure search, driven by the coordinator's phase
// announcements through ex. It returns when the coordinator finishes the
// phase sequence, or with the first error (the caller should report errors
// to the hub so the other participants unblock).
func (s *Searcher) ShardWorkerRun(ctx context.Context, req SearchRequest, shard, shards int, ex explore.ShardExchange) error {
	if err := s.shardable(); err != nil {
		return err
	}
	return s.explorer(ctx, req).ShardWorker(shard, shards, ex)
}

// FindConsensusFailureSharded is FindConsensusFailure sharded across
// `shards` in-process worker explorers. Results are bit-identical to the
// plain search — same witness, same found flag, same stats — at any shard
// count; shards == 1 exercises the full exchange protocol with a single
// worker. Cancellation behaves as in FindConsensusFailure: the coordinator
// polls ctx at level boundaries and the search comes back truncated with
// Stats.Cancelled set.
func (s *Searcher) FindConsensusFailureSharded(ctx context.Context, req SearchRequest, shards int) (*explore.Witness, bool, error) {
	if shards < 1 {
		return nil, false, fmt.Errorf("kset: shard count %d out of range", shards)
	}
	if err := s.shardable(); err != nil {
		return nil, false, err
	}
	hub := explore.NewLocalShardHub(shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			if err := s.ShardWorkerRun(ctx, req, shard, shards, hub.Exchange(shard)); err != nil {
				hub.Fail(fmt.Errorf("kset: shard %d: %w", shard, err))
			}
		}(i)
	}
	w, found, err := s.ShardCoordinate(ctx, req, hub)
	wg.Wait()
	return w, found, err
}
