package kset

import (
	"fmt"
	"math/rand"

	"kset/internal/graph"
)

// E4Params parameterizes the source-component experiment.
type E4Params struct {
	Sizes  []int
	Trials int
	Seed   int64
}

// DefaultE4Params returns the sweep used by cmd/experiments and benchmarks.
func DefaultE4Params() E4Params {
	return E4Params{Sizes: []int{16, 64, 256}, Trials: 10, Seed: 4}
}

// ExperimentSourceComponents validates Lemmas 6 and 7 on random digraphs
// with prescribed minimum in-degree delta (the shape induced by FLP stage
// 1's "wait for delta messages"): every source component has size at least
// delta+1, there are at most floor(n/(delta+1)) of them, there is exactly
// one when 2*delta >= n, and every node is reached by at least one source
// component.
func ExperimentSourceComponents(p E4Params) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Lemmas 6/7: source components of digraphs with min in-degree delta",
		Columns: []string{
			"n", "delta", "trials", "max #sources", "bound floor(n/(d+1))", "min |source|", "d+1", "all reached", "ok",
		},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for _, n := range p.Sizes {
		for _, delta := range []int{1, 2, n / 8, n / 3, n / 2, (n + 1) / 2} {
			if delta < 1 || delta >= n {
				continue
			}
			maxSources := 0
			minSize := n + 1
			allReached := true
			singleWhenDense := true
			for trial := 0; trial < p.Trials; trial++ {
				g := randomMinInDegree(rng, n, delta)
				srcs := g.SourceComponents()
				if len(srcs) > maxSources {
					maxSources = len(srcs)
				}
				for _, c := range srcs {
					if len(c) < minSize {
						minSize = len(c)
					}
				}
				if 2*delta >= n && len(srcs) != 1 {
					singleWhenDense = false
				}
				// Lemma 7 consequence: each node reached by some source
				// (checked on a sample of nodes to keep the sweep fast;
				// the graph tests check exhaustively on small graphs).
				nodes := g.Nodes()
				sample := len(nodes)
				if sample > 8 {
					sample = 8
				}
				for i := 0; i < sample; i++ {
					v := nodes[rng.Intn(len(nodes))]
					if len(g.SourceComponentsReaching(v)) == 0 {
						allReached = false
					}
				}
			}
			bound := n / (delta + 1)
			ok := maxSources <= bound && minSize >= delta+1 && allReached && singleWhenDense
			t.AddRow(n, delta, p.Trials, maxSources, bound, minSize, delta+1, allReached, ok)
		}
	}
	return t, nil
}

// randomMinInDegree builds a random simple digraph on n nodes (ids 0..n-1)
// in which every node has in-degree at least delta.
func randomMinInDegree(rng *rand.Rand, n, delta int) *graph.Digraph {
	g := graph.New()
	for v := 0; v < n; v++ {
		g.AddNode(v)
		perm := rng.Perm(n)
		added := 0
		for _, u := range perm {
			if u == v {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				panic(fmt.Sprintf("kset: impossible self-loop: %v", err))
			}
			added++
			if added >= delta {
				break
			}
		}
	}
	extra := rng.Intn(n + 1)
	for i := 0; i < extra; i++ {
		u, w := rng.Intn(n), rng.Intn(n)
		if u != w {
			_ = g.AddEdge(u, w)
		}
	}
	return g
}
