module kset

go 1.24
